package registry

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"testing"
	"time"

	"actyp/internal/query"
)

// batchCorpus builds the differential corpus: empty batch, single record,
// all-identical fleet, generated heterogeneous fleet, and adversarially
// divergent records where every field differs from its neighbour.
func batchCorpus(t *testing.T) map[string][]*Machine {
	t.Helper()
	now := time.Unix(0, 1723100000000000000)
	hetero, err := DefaultFleetSpec(64).Build(now)
	if err != nil {
		t.Fatalf("build fleet: %v", err)
	}
	homo, err := HomogeneousFleetSpec(64).Build(now)
	if err != nil {
		t.Fatalf("build fleet: %v", err)
	}
	divergent := []*Machine{
		{
			State: StateDown,
			Dynamic: Dynamic{
				Load: -1.5, ActiveJobs: -3, FreeMemory: 0.25, FreeSwap: 1e18,
				LastUpdate: time.Unix(0, -12345), ServiceFlag: 0xFFFFFFFF,
			},
			Static: Static{Speed: 1e-9, CPUs: 1 << 30, MaxLoad: 7.25, Name: "weird-\x00-name"},
			Access: Access{ObjectRef: "日本語/パス", SharedAccount: "", ExecUnitPort: 65535, MountMgrPort: -1, Addr: "::1"},
			Policy: Policy{
				UserGroups:    []string{},
				ToolGroups:    []string{"a", "a", "a"},
				ShadowPoolRef: "ref",
				UsagePolicy:   "policy-прог",
				Params: query.AttrSet{
					"":     {Str: "empty key"},
					"str":  query.StrAttr("plain"),
					"num":  query.NumAttr(-0.5),
					"list": query.ListAttr("x", "y", "x"),
					"raw":  {Str: "s", Num: 3, IsNum: false, List: []string{}},
				},
			},
			TakenBy: "pool/7",
		},
		{}, // zero record right after a maximal one: every field diffs back
		{
			Static:  Static{Name: "shares-nothing"},
			Dynamic: Dynamic{LastUpdate: time.Unix(0, 12345)},
			Policy:  Policy{Params: query.AttrSet{}},
		},
	}
	return map[string][]*Machine{
		"empty":      {},
		"single":     hetero[:1],
		"identical":  {homo[0], homo[0], homo[0], homo[0]},
		"homo":       homo,
		"hetero":     hetero,
		"divergent":  divergent,
		"mixed":      append(append([]*Machine{}, hetero[:8]...), divergent...),
		"zero-first": {{}, hetero[0], {}},
	}
}

// TestBatchDifferential is the oracle test: a decoded delta batch must
// reproduce records that marshal bit-for-bit identically to the full
// per-record (JSON) encoding of the originals.
func TestBatchDifferential(t *testing.T) {
	for name, ms := range batchCorpus(t) {
		t.Run(name, func(t *testing.T) {
			enc := AppendBatch(nil, ms)
			dec, err := DecodeBatch(enc)
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			if len(dec) != len(ms) {
				t.Fatalf("decoded %d records, want %d", len(dec), len(ms))
			}
			for i := range ms {
				want, err := json.Marshal(ms[i])
				if err != nil {
					t.Fatalf("record %d: marshal original: %v", i, err)
				}
				got, err := json.Marshal(dec[i])
				if err != nil {
					t.Fatalf("record %d: marshal decoded: %v", i, err)
				}
				if !bytes.Equal(got, want) {
					t.Errorf("record %d: decoded full encoding differs\n got %s\nwant %s", i, got, want)
				}
			}
			// The encoding is canonical: re-encoding the decode reproduces
			// the same bytes.
			if re := AppendBatch(nil, dec); !bytes.Equal(re, enc) {
				t.Errorf("re-encode differs: %d vs %d bytes", len(re), len(enc))
			}
		})
	}
}

// TestBatchSmallerThanFull checks the point of the exercise: a fleet batch
// encodes well below its full per-record JSON size.
func TestBatchSmallerThanFull(t *testing.T) {
	now := time.Unix(0, 1723100000000000000)
	ms, err := DefaultFleetSpec(100).Build(now)
	if err != nil {
		t.Fatalf("build fleet: %v", err)
	}
	full, err := json.Marshal(ms)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	delta := AppendBatch(nil, ms)
	if len(delta)*4 > len(full) {
		t.Errorf("delta batch %dB not under 1/4 of full %dB", len(delta), len(full))
	}
}

// TestBatchTruncation feeds every proper prefix of a valid batch to the
// decoder: all must fail cleanly (no panic, no success).
func TestBatchTruncation(t *testing.T) {
	now := time.Unix(0, 1723100000000000000)
	ms, err := DefaultFleetSpec(8).Build(now)
	if err != nil {
		t.Fatalf("build fleet: %v", err)
	}
	enc := AppendBatch(nil, ms)
	for i := 0; i < len(enc); i++ {
		if _, err := DecodeBatch(enc[:i]); err == nil {
			t.Fatalf("prefix of %d/%d bytes decoded without error", i, len(enc))
		}
	}
}

// TestBatchCorruption flips bytes (including dictionary tokens and
// lengths) and requires the decoder to survive without panicking or
// over-allocating; errors are expected, silent success on lucky flips is
// acceptable.
func TestBatchCorruption(t *testing.T) {
	now := time.Unix(0, 1723100000000000000)
	ms, err := DefaultFleetSpec(16).Build(now)
	if err != nil {
		t.Fatalf("build fleet: %v", err)
	}
	enc := AppendBatch(nil, ms)
	rng := rand.New(rand.NewSource(7))
	for round := 0; round < 2000; round++ {
		mut := append([]byte(nil), enc...)
		for flips := 1 + rng.Intn(4); flips > 0; flips-- {
			mut[rng.Intn(len(mut))] ^= byte(1 + rng.Intn(255))
		}
		_, _ = DecodeBatch(mut) // must not panic
	}
}

// TestBatchBadInputs covers the headline rejects directly.
func TestBatchBadInputs(t *testing.T) {
	if _, err := DecodeBatch(nil); err == nil {
		t.Error("nil input should fail")
	}
	if _, err := DecodeBatch([]byte{0x7F, 0x00}); err == nil {
		t.Error("unknown version should fail")
	}
	// Claimed record count far past the available bytes must be rejected
	// before allocation.
	if _, err := DecodeBatch([]byte{batchVersion, 0xFF, 0xFF, 0xFF, 0xFF, 0x07}); err == nil {
		t.Error("oversized record count should fail")
	}
	// Trailing garbage after a well-formed batch.
	enc := AppendBatch(nil, []*Machine{{Static: Static{Name: "m"}}})
	if _, err := DecodeBatch(append(enc, 0x00)); err == nil {
		t.Error("trailing bytes should fail")
	}
}
