package registry

import (
	"encoding/json"
	"fmt"
	"io"

	"actyp/internal/query"
)

// Backend is the storage engine behind a DB. Two implementations exist:
//
//   - Locked: the original single-RWMutex map, kept as the reference
//     oracle for differential tests and comparison benchmarks.
//   - Sharded: hash-sharded with per-shard locks, per-shard free lists,
//     and inverted indexes over discrete admin parameters — the default.
//
// All implementations share the semantics the pipeline depends on:
// name-sorted deterministic ordering of Walk/Select/Take/Names/TakenBy,
// copy-out isolation (callers never alias stored records), and the atomic
// mark-taken protocol of Section 5.2.3 (no machine is ever handed to two
// pool instances at once).
type Backend interface {
	// Add inserts a machine record. It fails if the record is invalid or
	// a machine with the same name already exists.
	Add(m *Machine) error
	// Remove deletes a machine record by name.
	Remove(name string) error
	// Get returns a copy of the record for name.
	Get(name string) (*Machine, error)
	// Len returns the number of registered machines.
	Len() int
	// Names returns all machine names, sorted.
	Names() []string
	// SetState updates field 1 for a machine.
	SetState(name string, s State) error
	// UpdateDynamic overwrites the monitor-maintained fields 2–7 as a unit.
	UpdateDynamic(name string, d Dynamic) error
	// UpdateDynamicBatch applies many dynamic updates in one call,
	// amortizing lock acquisitions (the sharded engine locks each shard
	// once per batch instead of once per machine). Unknown machines are
	// skipped; it returns how many records were updated.
	UpdateDynamicBatch(updates []DynamicUpdate) int
	// SetParam sets one administrator-defined parameter (field 20).
	SetParam(name, key string, attr query.Attr) error
	// Walk calls fn for every machine in name order, stopping early if fn
	// returns false. The callback receives a copy.
	Walk(fn func(*Machine) bool)
	// Select returns copies of the machines whose attributes satisfy the
	// rsrc constraints of the query, regardless of taken state, in name
	// order.
	Select(q *query.Query) []*Machine
	// Take atomically selects up to limit machines that satisfy the
	// query, are not already taken, and marks them taken by the named
	// pool instance. A limit of zero or less means "no limit".
	Take(q *query.Query, poolInstance string, limit int) []*Machine
	// Release clears the taken mark on the named machines, but only if
	// they are held by the given pool instance.
	Release(poolInstance string, names ...string) int
	// ReleaseAll clears every taken mark held by the pool instance.
	ReleaseAll(poolInstance string) int
	// TakenBy returns the names of machines currently held by the pool
	// instance, sorted.
	TakenBy(poolInstance string) []string
	// Save writes the database as JSON to w.
	Save(w io.Writer) error
	// Load replaces the database contents with the JSON snapshot read
	// from r.
	Load(r io.Reader) error
	// Watch subscribes to the change stream: every mutation the backend
	// commits is published as a typed Event through a bounded, coalescing
	// per-subscriber ring that degrades to a resync marker on overflow
	// instead of ever blocking a writer. See watch.go for the contract.
	Watch(buffer int) *Subscription
}

// Backend kind names accepted by OpenBackend and the daemons' flags.
const (
	BackendLocked  = "locked"
	BackendSharded = "sharded"
)

// OpenBackend constructs a backend by kind name. An empty kind selects the
// default (sharded). For the sharded backend, shards <= 0 picks a
// GOMAXPROCS-scaled shard count; the locked backend ignores shards.
func OpenBackend(kind string, shards int) (Backend, error) {
	switch kind {
	case BackendLocked:
		return NewLocked(), nil
	case BackendSharded, "":
		return NewSharded(shards), nil
	}
	return nil, fmt.Errorf("registry: unknown backend %q (want %q or %q)", kind, BackendLocked, BackendSharded)
}

// snapshot is the on-disk shape of the database, shared by every backend so
// snapshots written by one can be loaded by another.
type snapshot struct {
	Machines []*Machine `json:"machines"`
}

// decodeSnapshot reads and fully validates a snapshot, returning the
// records keyed by name. Every backend's Load decodes through it, so the
// engines can never drift in which snapshots they accept, and a bad
// snapshot is rejected before any store is touched.
func decodeSnapshot(r io.Reader) (map[string]*Machine, error) {
	var snap snapshot
	if err := json.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("registry: load: %w", err)
	}
	fresh := make(map[string]*Machine, len(snap.Machines))
	for _, m := range snap.Machines {
		if err := m.Validate(); err != nil {
			return nil, err
		}
		if _, dup := fresh[m.Static.Name]; dup {
			return nil, fmt.Errorf("registry: load: duplicate machine %q", m.Static.Name)
		}
		fresh[m.Static.Name] = m
	}
	return fresh, nil
}
