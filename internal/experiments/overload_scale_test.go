package experiments

import (
	"testing"
	"time"

	"actyp/internal/metrics"
	"actyp/internal/netsim"
	"actyp/internal/schedule"
)

// seriesOf builds a two-point series: y0 at 1x load and y1 at 10x.
func seriesOf(label string, y0, y1 float64) metrics.Series {
	s := metrics.Series{Label: label}
	s.Add(1, y0)
	s.Add(10, y1)
	return s
}

// TestOverloadScaleBar runs a reduced overload sweep and asserts the
// regression bar the full figure enforces in CI: with priority lanes the
// control-plane p99 at the highest offered load stays within a small
// multiple of its 1x value, and the server actually sheds bulk work with
// Busy at that load.
func TestOverloadScaleBar(t *testing.T) {
	if testing.Short() {
		t.Skip("overload sweep needs wall time")
	}
	cfg := OverloadConfig{
		Machines:       500,
		Loads:          []int{1, 4},
		BulkPerLoad:    4,
		ControlClients: 2,
		Window:         2,
		QueueCap:       4,
		ScanCost:       10 * time.Microsecond, // 5ms per query: saturates with a handful of flooders
		Duration:       400 * time.Millisecond,
		Profile:        netsim.Local(),
		Weights:        schedule.DefaultLaneWeights(),
		Seed:           1,
	}
	res, err := OverloadScale(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.ControlP99) != 2 || len(res.Goodput) != 2 || len(res.Shed) != 2 {
		t.Fatalf("want one series per mode, got p99=%d goodput=%d shed=%d",
			len(res.ControlP99), len(res.Goodput), len(res.Shed))
	}
	for _, s := range res.ControlP99 {
		if len(s.Points) != len(cfg.Loads) {
			t.Fatalf("series %q has %d points, want %d", s.Label, len(s.Points), len(cfg.Loads))
		}
	}
	if len(res.BulkCounts) != len(cfg.Loads) {
		t.Fatalf("lanes bulk counters: %d entries, want %d", len(res.BulkCounts), len(cfg.Loads))
	}
	if err := res.Check(); err != nil {
		t.Errorf("regression bar: %v", err)
	}
	// Every point must have seen real traffic on both sides of the split.
	for _, c := range res.BulkCounts {
		if c.Done == 0 {
			t.Errorf("a lanes point completed no bulk work: %+v", res.BulkCounts)
		}
	}
}

// TestOverloadCheckRejectsBadSeries pins the bar itself: a lanes series
// whose high-load p99 blows past 5x of the floor must fail Check.
func TestOverloadCheckRejectsBadSeries(t *testing.T) {
	res := OverloadResult{QueryCost: 10 * time.Millisecond}
	res.ControlP99 = append(res.ControlP99, seriesOf("lanes", 10, 2000))
	if err := res.Check(); err == nil {
		t.Fatal("Check passed a 200x degradation")
	}
	// Within the bound (and with sheds recorded) it passes.
	ok := OverloadResult{QueryCost: 10 * time.Millisecond}
	ok.ControlP99 = append(ok.ControlP99, seriesOf("lanes", 10, 40))
	if err := ok.Check(); err != nil {
		t.Fatalf("Check rejected a healthy series: %v", err)
	}
	// A missing lanes series is an error, not a silent pass.
	var empty OverloadResult
	if err := empty.Check(); err == nil {
		t.Fatal("Check passed an empty result")
	}
}
