package experiments

import (
	"testing"

	"actyp/internal/pool"
)

func TestPipelineScaleSmoke(t *testing.T) {
	cfg := PipelineScaleConfig{
		Sizes:        []int{64, 128},
		Engines:      []string{pool.EngineOracle, pool.EngineIndexed},
		Clients:      4,
		OpsPerClient: 5,
	}
	series, err := PipelineScale(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 2 {
		t.Fatalf("series = %d, want one per engine", len(series))
	}
	for _, s := range series {
		if len(s.Points) != len(cfg.Sizes) {
			t.Errorf("series %q has %d points, want %d", s.Label, len(s.Points), len(cfg.Sizes))
		}
		for _, p := range s.Points {
			if p.Y <= 0 {
				t.Errorf("series %q: non-positive mean %f at %f machines", s.Label, p.Y, p.X)
			}
		}
	}
	if series[0].Label != pool.EngineOracle || series[1].Label != pool.EngineIndexed {
		t.Errorf("labels = %q, %q", series[0].Label, series[1].Label)
	}
}

func TestUsePoolEngineValidates(t *testing.T) {
	if err := UsePoolEngine("bogus"); err == nil {
		t.Fatal("bogus engine accepted")
	}
	if err := UsePoolEngine(pool.EngineIndexed); err != nil {
		t.Fatal(err)
	}
	if got := PoolEngine(); got != pool.EngineIndexed {
		t.Errorf("PoolEngine = %q", got)
	}
	t.Cleanup(func() {
		if err := UsePoolEngine(""); err != nil {
			t.Fatal(err)
		}
	})
}
