package experiments

import (
	"testing"
	"time"

	"actyp/internal/netsim"
)

// The tests run the figure drivers at reduced scale and assert the shapes
// the paper reports, not absolute numbers.

func TestFig4ShapeMorePoolsFaster(t *testing.T) {
	cfg := Fig4Config{
		Machines:         320,
		Pools:            []int{1, 4, 16},
		Clients:          16,
		QueriesPerClient: 6,
		ScanCost:         20 * time.Microsecond, // exaggerated so the trend dominates noise
		Profile:          netsim.Local(),
		Seed:             1,
	}
	s, err := Fig4(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Points) != 3 {
		t.Fatalf("points = %v", s.Points)
	}
	first, last := s.Points[0].Y, s.Points[len(s.Points)-1].Y
	if last >= first {
		t.Errorf("16 pools (%.6fs) should beat 1 pool (%.6fs)", last, first)
	}
}

func TestFig5ShapeWANFloor(t *testing.T) {
	profile := netsim.Profile{Latency: 5 * time.Millisecond, Seed: 1}
	cfg := Fig5Config{
		Machines:         160,
		Pools:            []int{1, 4},
		ClientCounts:     []int{2, 8},
		QueriesPerClient: 3,
		ScanCost:         10 * time.Microsecond,
		Profile:          profile,
		Seed:             1,
	}
	series, err := Fig5(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 2 {
		t.Fatalf("series = %d", len(series))
	}
	// Every point sits above the network floor (2 one-way delays per
	// request plus 2 per release = 4 x 5ms = 20ms per iteration, of which
	// the request accounts for at least 10ms).
	for _, s := range series {
		for _, p := range s.Points {
			if p.Y < 0.010 {
				t.Errorf("%s at pools=%v: %.4fs is below the WAN floor", s.Label, p.X, p.Y)
			}
		}
	}
}

func TestFig6ShapeBiggerPoolsSlower(t *testing.T) {
	cfg := Fig6Config{
		PoolSizes:        []int{100, 400},
		Clients:          []int{1, 16},
		QueriesPerClient: 6,
		ScanCost:         50 * time.Microsecond,
		Seed:             1,
	}
	series, err := Fig6(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 2 {
		t.Fatalf("series = %d", len(series))
	}
	// At the same client count, the larger pool responds slower.
	small16 := series[0].Points[1].Y
	large16 := series[1].Points[1].Y
	if large16 <= small16 {
		t.Errorf("pool=400 (%.6fs) should be slower than pool=100 (%.6fs) at 16 clients", large16, small16)
	}
	// Within a series, more clients mean slower responses.
	for _, s := range series {
		if s.Points[1].Y <= s.Points[0].Y {
			t.Errorf("%s: 16 clients (%.6fs) should be slower than 1 (%.6fs)", s.Label, s.Points[1].Y, s.Points[0].Y)
		}
	}
}

func TestFig7ShapeSplittingHelps(t *testing.T) {
	cfg := Fig7Config{
		Machines:         400,
		Splits:           []int{1, 4},
		Clients:          []int{16},
		QueriesPerClient: 8,
		ScanCost:         50 * time.Microsecond,
		Seed:             1,
	}
	series, err := Fig7(cfg)
	if err != nil {
		t.Fatal(err)
	}
	unsplit := series[0].Points[0].Y
	split4 := series[1].Points[0].Y
	if split4 >= unsplit {
		t.Errorf("4x100 split (%.6fs) should beat unsplit (%.6fs)", split4, unsplit)
	}
}

func TestFig8ShapeReplicationHelps(t *testing.T) {
	cfg := Fig8Config{
		Machines:         400,
		Replicas:         []int{1, 4},
		Clients:          []int{16},
		QueriesPerClient: 8,
		ScanCost:         50 * time.Microsecond,
		Seed:             1,
	}
	series, err := Fig8(cfg)
	if err != nil {
		t.Fatal(err)
	}
	one := series[0].Points[0].Y
	four := series[1].Points[0].Y
	if four >= one {
		t.Errorf("4 processes (%.6fs) should beat 1 (%.6fs)", four, one)
	}
}

func TestFig9ShapeHeavyTail(t *testing.T) {
	cfg := Fig9Config{Runs: 30000, Buckets: 100, MaxCPU: 1000, Seed: 1}
	series, stats, err := Fig9(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(series.Points) != 100 {
		t.Fatalf("buckets = %d", len(series.Points))
	}
	// The first bucket (0-10s) is the overwhelming mode.
	if series.Points[0].Y < series.Points[1].Y {
		t.Error("first bucket should dominate")
	}
	total := 0.0
	for _, p := range series.Points {
		total += p.Y
	}
	if series.Points[0].Y/total < 0.4 {
		t.Errorf("mode holds %.2f%% of plotted mass, want >40%%", 100*series.Points[0].Y/total)
	}
	if stats.Max < 1e5 {
		t.Errorf("tail max = %v", stats.Max)
	}
	if stats.ShortFrac < 0.5 {
		t.Errorf("short fraction = %v", stats.ShortFrac)
	}

	if _, _, err := Fig9(Fig9Config{}); err == nil {
		t.Error("zero config should fail")
	}
}

func TestAblationFirstMatchFaster(t *testing.T) {
	series, err := AblationFirstMatch(64, 4, 6, 200*time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 2 {
		t.Fatalf("series = %d", len(series))
	}
	waitAll := series[0].Points[0].Y
	firstMatch := series[1].Points[0].Y
	// First-match returns without waiting for the slowest fragment; with
	// 4 architectures and a real scan cost it must not be slower by more
	// than noise.
	if firstMatch > waitAll*1.5 {
		t.Errorf("first-match (%.6fs) much slower than wait-all (%.6fs)", firstMatch, waitAll)
	}
}

func TestAblationStaticPoolsHidesCreation(t *testing.T) {
	series, err := AblationStaticPools(200, 4, 10*time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	dynamicFirst := series[0].Points[0].Y
	staticFirst := series[1].Points[0].Y
	if staticFirst >= dynamicFirst {
		t.Errorf("warm first query (%.6fs) should beat cold first query (%.6fs)", staticFirst, dynamicFirst)
	}
}

func TestAblationSelection(t *testing.T) {
	series, err := AblationSelection(2000, 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 2 {
		t.Fatalf("series = %d", len(series))
	}
	linear := series[0].Points[0].Y
	presorted := series[1].Points[0].Y
	if presorted >= linear {
		t.Errorf("presorted pick (%vns) should beat linear scan (%vns)", presorted, linear)
	}
	if _, err := AblationSelection(0, 0); err == nil {
		t.Error("bad config should fail")
	}
}
