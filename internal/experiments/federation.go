package experiments

// Federated resolution fast path (the PR's figure): two sweeps that stand
// the new machinery against the paper's baselines.
//
// Leg 1 — miss-resolve: a home pool manager with no local capacity
// delegates every query to P wire-connected peers, and only the LAST peer
// (worst-case placement) owns matching machines. The serial walk pays one
// full round trip per empty peer before reaching capacity; the first-win
// fan-out races all candidates, so its p99 tracks a single round trip.
// Swept over peer count and network profile (LAN, bandwidth-modeled WAN).
//
// Leg 2 — remote freshness: a consumer keeps a replica of a remote
// registry while the remote's monitor sweeps the fleet continuously, and
// allocates from a pool living on that replica. Watch mode feeds the pool
// through the pushed change stream (dispatcher + incremental Apply); poll
// mode is the old ladder — periodic full snapshot fetches plus timed
// stop-the-world pool rebuilds. Allocate p50/p99 and update-visibility lag
// are measured per mode across fleet sizes.

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"actyp/internal/core"
	"actyp/internal/directory"
	"actyp/internal/metrics"
	"actyp/internal/monitor"
	"actyp/internal/netsim"
	"actyp/internal/pool"
	"actyp/internal/poolmgr"
	"actyp/internal/query"
	"actyp/internal/registry"
	"actyp/internal/stage"
)

// FederationConfig parameterizes both legs.
type FederationConfig struct {
	// Leg 1: miss-resolve delegation.
	Peers        []int         // peer counts to sweep (capacity always at the last peer)
	PeerMachines int           // fleet size at the one peer that has capacity
	Clients      int           // concurrent closed-loop requesters at the home manager
	OpsPerClient int           // measured resolves per requester per point
	HedgeDelay   time.Duration // fan-out stagger (0 races the full width at once)
	Profiles     []WanProfile  // network legs (lan, wan)

	// Leg 2: remote freshness.
	FreshSizes   []int         // remote fleet sizes to sweep
	FreshClients int           // concurrent allocators on the replica pool
	FreshOps     int           // measured allocates per client per point
	PollInterval time.Duration // poll-mode fetch + rebuild cadence
	LagSamples   int           // update-visibility probes per point
	// FreshThink is untimed think time between allocates. It stretches the
	// measured window across many poll cycles: an unpaced loop of
	// microsecond allocates finishes inside a single refresh interval and
	// never samples the rebuild's shadow. Both modes pay identical pacing,
	// and the sleep sits outside the timed section.
	FreshThink time.Duration
}

// DefaultFederation gates the PR's acceptance numbers: 4 WAN peers for the
// delegation leg, 10k machines for the freshness leg.
func DefaultFederation() FederationConfig {
	return FederationConfig{
		Peers:        []int{1, 2, 4},
		PeerMachines: 64,
		Clients:      4,
		OpsPerClient: 8,
		HedgeDelay:   0,
		Profiles: []WanProfile{
			{Name: "lan", Profile: netsim.LAN()},
			{Name: "wan", Profile: netsim.WAN()},
		},
		FreshSizes:   []int{1000, 10000},
		FreshClients: 8,
		FreshOps:     150,
		PollInterval: 25 * time.Millisecond,
		LagSamples:   20,
		FreshThink:   time.Millisecond,
	}
}

// FederationResult is both sweeps' output. Miss series are labelled
// "<profile>/<serial|fanout>" with peer count on the x axis; Alloc and Lag
// series are labelled "<watch|poll>" with fleet size on the x axis. All
// y values are seconds.
type FederationResult struct {
	MissP50  []metrics.Series
	MissP99  []metrics.Series
	AllocP50 []metrics.Series
	AllocP99 []metrics.Series
	LagP99   []metrics.Series
}

// AllSeries flattens the result into one labelled set for BENCH emission.
func (r FederationResult) AllSeries() []metrics.Series {
	prefixed := func(prefix string, series []metrics.Series) []metrics.Series {
		out := make([]metrics.Series, len(series))
		for i, s := range series {
			out[i] = s
			out[i].Label = prefix + s.Label
		}
		return out
	}
	var out []metrics.Series
	out = append(out, prefixed("miss-p50 ", r.MissP50)...)
	out = append(out, prefixed("miss-p99 ", r.MissP99)...)
	out = append(out, prefixed("alloc-p50 ", r.AllocP50)...)
	out = append(out, prefixed("alloc-p99 ", r.AllocP99)...)
	out = append(out, prefixed("lag-p99 ", r.LagP99)...)
	return out
}

// Check asserts the PR's regression bars at each sweep's largest point:
// the fan-out must cut WAN miss-resolve p99 by at least 3x over the serial
// walk, and watch-fed remote allocation p99 must beat the poll-mode ladder
// by at least 5x.
func (r FederationResult) Check() error {
	serial := findSeries(r.MissP99, "wan/serial")
	fanout := findSeries(r.MissP99, "wan/fanout")
	if serial == nil || fanout == nil {
		return errors.New("federation: missing a wan miss-resolve series to assert")
	}
	i := len(serial.Points) - 1
	if i < 0 || i >= len(fanout.Points) {
		return errors.New("federation: wan miss-resolve series lengths diverge")
	}
	var missGain float64
	if fanout.Points[i].Y > 0 {
		missGain = serial.Points[i].Y / fanout.Points[i].Y
	}
	if missGain < 3 {
		return fmt.Errorf("federation: at %g wan peers, fan-out cut miss-resolve p99 only %.2fx (serial %.3fs vs fanout %.3fs, need >=3x)",
			serial.Points[i].X, missGain, serial.Points[i].Y, fanout.Points[i].Y)
	}

	watch := findSeries(r.AllocP99, "watch")
	poll := findSeries(r.AllocP99, "poll")
	if watch == nil || poll == nil {
		return errors.New("federation: missing a freshness series to assert")
	}
	j := len(poll.Points) - 1
	if j < 0 || j >= len(watch.Points) {
		return errors.New("federation: freshness series lengths diverge")
	}
	var freshGain float64
	if watch.Points[j].Y > 0 {
		freshGain = poll.Points[j].Y / watch.Points[j].Y
	}
	if freshGain < 5 {
		return fmt.Errorf("federation: at %g machines, watch beat poll remote-allocate p99 only %.2fx (poll %.4fs vs watch %.6fs, need >=5x)",
			poll.Points[j].X, freshGain, poll.Points[j].Y, watch.Points[j].Y)
	}
	return nil
}

func findSeries(series []metrics.Series, label string) *metrics.Series {
	for i := range series {
		if series[i].Label == label {
			return &series[i]
		}
	}
	return nil
}

// FederationScale runs both sweeps.
func FederationScale(cfg FederationConfig) (FederationResult, error) {
	var res FederationResult
	if len(cfg.Peers) == 0 {
		cfg = DefaultFederation()
	}
	for _, prof := range cfg.Profiles {
		for _, mode := range []string{"serial", "fanout"} {
			p50s := metrics.Series{Label: prof.Name + "/" + mode}
			p99s := metrics.Series{Label: prof.Name + "/" + mode}
			for _, peers := range cfg.Peers {
				p50, p99, err := federationMissPoint(cfg, prof.Profile, peers, mode == "fanout")
				if err != nil {
					return res, fmt.Errorf("federation: %s/%s peers %d: %w", prof.Name, mode, peers, err)
				}
				p50s.Add(float64(peers), p50.Seconds())
				p99s.Add(float64(peers), p99.Seconds())
			}
			res.MissP50 = append(res.MissP50, p50s)
			res.MissP99 = append(res.MissP99, p99s)
		}
	}
	for _, mode := range []string{"watch", "poll"} {
		a50 := metrics.Series{Label: mode}
		a99 := metrics.Series{Label: mode}
		lag := metrics.Series{Label: mode}
		for _, size := range cfg.FreshSizes {
			p50, p99, lag99, err := federationFreshPoint(cfg, size, mode == "watch")
			if err != nil {
				return res, fmt.Errorf("federation: freshness %s size %d: %w", mode, size, err)
			}
			a50.Add(float64(size), p50.Seconds())
			a99.Add(float64(size), p99.Seconds())
			lag.Add(float64(size), lag99.Seconds())
		}
		res.AllocP50 = append(res.AllocP50, a50)
		res.AllocP99 = append(res.AllocP99, a99)
		res.LagP99 = append(res.LagP99, lag)
	}
	return res, nil
}

// federationMissPoint measures one (profile, mode, peers) point: resolve
// p50/p99 at the home manager, with every resolve missing locally and the
// only capacity sitting behind the last peer's wire server.
func federationMissPoint(cfg FederationConfig, profile netsim.Profile, peers int, fanout bool) (p50, p99 time.Duration, err error) {
	const criteria = "punch.rsrc.arch = sun"
	q, err := query.ParseBasic(criteria)
	if err != nil {
		return 0, 0, err
	}

	// Peer managers: all empty but the last, each behind its own stage
	// server on the profiled network.
	var servers []*stage.Server
	var remotes []*stage.Remote
	defer func() {
		for _, r := range remotes {
			_ = r.Close()
		}
		for _, s := range servers {
			s.Close()
		}
	}()
	var lastMgr *poolmgr.Manager
	var lastFactory *poolmgr.LocalFactory
	homeDir := directory.New()
	for i := 0; i < peers; i++ {
		pcfg := poolmgr.Config{Name: fmt.Sprintf("pm-peer-%d", i), Dir: directory.New()}
		if i == peers-1 {
			db, err := newDB()
			if err != nil {
				return 0, 0, err
			}
			if err := registry.HomogeneousFleetSpec(cfg.PeerMachines).Populate(db, time.Now()); err != nil {
				return 0, 0, err
			}
			lastFactory = &poolmgr.LocalFactory{DB: db}
			pcfg.Factory = lastFactory
		}
		m, err := poolmgr.New(pcfg)
		if err != nil {
			return 0, 0, err
		}
		if i == peers-1 {
			lastMgr = m
		}
		srv, err := stage.Serve(m, "127.0.0.1:0", profile)
		if err != nil {
			return 0, 0, err
		}
		servers = append(servers, srv)
		remote, err := stage.DialRemote(srv.Addr(), profile, 0)
		if err != nil {
			return 0, 0, err
		}
		remotes = append(remotes, remote)
		homeDir.AddPeer(remote)
	}
	defer lastFactory.CloseAll()

	homeCfg := poolmgr.Config{Name: "pm-home", Dir: homeDir, HedgeDelay: cfg.HedgeDelay}
	if fanout {
		homeCfg.Fanout = peers
	}
	home, err := poolmgr.New(homeCfg)
	if err != nil {
		return 0, 0, err
	}

	// Warm the peer's pool so the sweep measures steady-state delegation,
	// not first-touch pool creation.
	lease, err := home.Resolve(q)
	if err != nil {
		return 0, 0, fmt.Errorf("warm resolve: %w", err)
	}
	if err := lastMgr.Release(lease); err != nil {
		return 0, 0, err
	}

	// Closed loop; only the resolve is timed — the release goes straight to
	// the owning manager so both modes pay identical untimed cleanup.
	rec := metrics.NewRecorder()
	var wg sync.WaitGroup
	errCh := make(chan error, cfg.Clients)
	for c := 0; c < cfg.Clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < cfg.OpsPerClient; i++ {
				start := time.Now()
				lease, err := home.Resolve(q)
				if err != nil {
					errCh <- err
					return
				}
				rec.Record(time.Since(start))
				if err := lastMgr.Release(lease); err != nil {
					errCh <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errCh)
	if err := <-errCh; err != nil {
		return 0, 0, err
	}
	return rec.Percentile(50), rec.Percentile(99), nil
}

// federationFreshPoint measures one (mode, size) freshness point: allocate
// p50/p99 on a pool living on a wire-fed replica, plus update-visibility
// lag p99, while the remote monitor sweeps its fleet back to back.
func federationFreshPoint(cfg FederationConfig, size int, watch bool) (p50, p99, lag99 time.Duration, err error) {
	const criteria = "punch.rsrc.arch = sun"
	q, err := query.ParseBasic(criteria)
	if err != nil {
		return 0, 0, 0, err
	}
	db, err := newDB()
	if err != nil {
		return 0, 0, 0, err
	}
	if err := registry.HomogeneousFleetSpec(size).Populate(db, time.Now()); err != nil {
		return 0, 0, 0, err
	}
	svc, err := core.New(core.Options{DB: db, PoolEngine: PoolEngine(), RefreshMode: RefreshMode()})
	if err != nil {
		return 0, 0, 0, err
	}
	defer svc.Close()
	srv, err := core.Serve(svc, "127.0.0.1:0", netsim.Local())
	if err != nil {
		return 0, 0, 0, err
	}
	defer srv.Close()
	cli, err := core.Dial(srv.Addr(), netsim.Local())
	if err != nil {
		return 0, 0, 0, err
	}
	defer cli.Close()

	replica := registry.NewDB()
	w, err := registry.StartRemoteWatch(registry.RemoteWatchConfig{
		Transport:    cli,
		Replica:      replica,
		Ring:         1 << 16,
		PollInterval: cfg.PollInterval,
		ForcePoll:    !watch,
	})
	if err != nil {
		return 0, 0, 0, err
	}
	defer w.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := w.WaitSynced(ctx); err != nil {
		return 0, 0, 0, err
	}

	pcfg := pool.Config{Name: query.Name(q), DB: replica, Exclusive: false, Engine: PoolEngine()}
	var disp *pool.Dispatcher
	if watch {
		disp = pool.NewDispatcher(replica, 1<<16)
		disp.Start()
		defer disp.Stop()
		pcfg.Events = disp
	}
	p, err := pool.New(pcfg)
	if err != nil {
		return 0, 0, 0, err
	}
	defer p.Close()

	stop := make(chan struct{})
	var bg sync.WaitGroup
	// Poll mode's freshness floor: timed stop-the-world full rebuilds of
	// the pool cache (the replica itself is refreshed by the watcher's
	// snapshot fetches on the same cadence).
	if !watch {
		bg.Add(1)
		go func() {
			defer bg.Done()
			t := time.NewTicker(cfg.PollInterval)
			defer t.Stop()
			for {
				select {
				case <-stop:
					return
				case <-t.C:
					p.Refresh()
				}
			}
		}()
	}
	// The remote monitor sweeps its whole fleet back to back — the churn
	// both freshness modes must absorb across the wire.
	mon := monitor.New(monitor.Config{DB: db, Sampler: monitor.NewSyntheticSampler(1)})
	bg.Add(1)
	go func() {
		defer bg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			mon.Sweep()
		}
	}()

	// Lag probes: stamp a param on the remote (params are outside the
	// monitor's sweep, so the stamp survives until it propagates) and time
	// its visibility in the replica.
	lagRec := metrics.NewRecorder()
	sentinel := db.Names()[0]
	lagErr := make(chan error, 1)
	bg.Add(1)
	go func() {
		defer bg.Done()
		for i := 0; i < cfg.LagSamples; i++ {
			select {
			case <-stop:
				return
			default:
			}
			stamp := fmt.Sprintf("lag-%d", i)
			start := time.Now()
			if err := db.SetParam(sentinel, "lagstamp", query.StrAttr(stamp)); err != nil {
				lagErr <- err
				return
			}
			for {
				if m, err := replica.Get(sentinel); err == nil &&
					m.Policy.Params["lagstamp"].Str == stamp {
					break
				}
				if time.Since(start) > 30*time.Second {
					lagErr <- fmt.Errorf("lag probe %d never became visible", i)
					return
				}
				time.Sleep(200 * time.Microsecond)
			}
			lagRec.Record(time.Since(start))
			time.Sleep(5 * time.Millisecond)
		}
	}()

	rec := metrics.NewRecorder()
	var loop sync.WaitGroup
	errCh := make(chan error, cfg.FreshClients)
	for c := 0; c < cfg.FreshClients; c++ {
		loop.Add(1)
		go func() {
			defer loop.Done()
			for i := 0; i < cfg.FreshOps; i++ {
				start := time.Now()
				lease, aerr := p.Allocate(q)
				if aerr == nil {
					aerr = p.Release(lease.ID)
				}
				if aerr != nil {
					errCh <- aerr
					return
				}
				rec.Record(time.Since(start))
				if cfg.FreshThink > 0 {
					time.Sleep(cfg.FreshThink)
				}
			}
		}()
	}
	loop.Wait()
	close(errCh)
	err = <-errCh
	close(stop)
	bg.Wait()
	if err != nil {
		return 0, 0, 0, err
	}
	select {
	case err := <-lagErr:
		return 0, 0, 0, err
	default:
	}
	return rec.Percentile(50), rec.Percentile(99), lagRec.Percentile(99), nil
}
