package experiments

// Domain-partitioned namespace (the PR's figure): three sweeps that stand
// the ownership layer against the unpartitioned baselines.
//
// Leg 1 — resident state: a fleet spread over D administrative domains is
// split across P nodes by the rendezvous ownership table, each node's
// white pages keeping only the domains it owns. The per-node resident
// record count must track fleet/P — the storage half of partitioning.
//
// Leg 2 — cross-domain resolve: a home manager resolves queries that pin
// domains living on P wire-connected peers. The ownership table turns each
// resolve into ONE directed hop to the owner; the PR 8 baseline races all
// P peers first-win, so P-1 probes per query are pure waste — each one a
// white-pages scan that comes up empty at a peer that does not own the
// domain. Both planes are driven open-loop at HALF the directed plane's
// calibrated capacity: the directed hop cruises at 50% utilization while
// the same offered rate puts the fan-out plane over capacity, so the
// wasted probes surface as queueing growth in its p99 rather than
// vanishing into idle connections.
//
// Leg 3 — owned-domain allocate: allocation for a locally-owned domain on
// a partitioned node (resident set fleet/P) against a single node holding
// the whole fleet. The ownership check rides the resolve path, so this
// leg bounds its overhead: partitioned allocate p99 must stay within
// AllocSlack of the single-node baseline.

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"actyp/internal/directory"
	"actyp/internal/metrics"
	"actyp/internal/netsim"
	"actyp/internal/poolmgr"
	"actyp/internal/query"
	"actyp/internal/registry"
	"actyp/internal/route"
	"actyp/internal/stage"
)

// PartitionConfig parameterizes the three sweeps.
type PartitionConfig struct {
	Fleets     []int // fleet sizes for the resident and allocate legs
	Domains    int   // administrative domains in the synthetic fleet
	PeerCounts []int // node/peer counts to sweep (resident + resolve legs)
	// PeerMachines is the per-peer fleet size in the resolve leg. Keep it
	// above ResolveOps: the open loop never blocks on completions, so in
	// the overloaded fan-out plane every op can be in flight at once and
	// the owner's pool must not exhaust.
	PeerMachines int
	// ResolveOps is the total open-loop request count per resolve point.
	ResolveOps   int
	Clients      int // concurrent closed-loop requesters (allocate leg)
	OpsPerClient int // measured ops per requester per point
	Window       int // per-connection in-flight cap at the peer servers
	// ResidentSlack bounds how far above fleet/P the most loaded node may
	// sit at the largest P (rendezvous assigns whole domains, so perfect
	// balance needs D >> P; 64 domains over 4 nodes lands under 1.6).
	ResidentSlack float64
	// XResolveBar is the minimum fan-out/directed p99 ratio at the largest
	// peer count: the directed hop must be at least this much faster.
	XResolveBar float64
	// AllocSlack is the maximum partitioned/single allocate-p99 ratio at
	// the largest fleet.
	AllocSlack float64
}

// DefaultPartition gates the PR's acceptance numbers: resident records
// tracking fleet/P at P=4, the directed cross-domain resolve at least 3x
// faster than the 4-peer fan-out, and owned-domain allocation within 1.5x
// of the single-node baseline.
func DefaultPartition() PartitionConfig {
	return PartitionConfig{
		Fleets:        []int{1000, 4000},
		Domains:       64,
		PeerCounts:    []int{2, 4},
		PeerMachines:  2048,
		ResolveOps:    1200,
		Clients:       8,
		OpsPerClient:  25,
		Window:        1,
		ResidentSlack: 1.6,
		XResolveBar:   3,
		AllocSlack:    1.5,
	}
}

// PartitionResult is the three sweeps' output. Resident series are
// labelled "resident/pP" (fleet on x, records on y); resolve series
// "xresolve/<directed|fanout>" (peers on x, seconds on y); allocate series
// "alloc/<single|partitioned>" (fleet on x, seconds on y).
type PartitionResult struct {
	Resident []metrics.Series
	XResolve []metrics.Series
	Alloc    []metrics.Series

	cfg PartitionConfig
}

// AllSeries flattens the result into one labelled set for BENCH emission.
func (r PartitionResult) AllSeries() []metrics.Series {
	var out []metrics.Series
	out = append(out, r.Resident...)
	out = append(out, r.XResolve...)
	out = append(out, r.Alloc...)
	return out
}

// Check asserts the PR's regression bars at each sweep's largest point.
func (r PartitionResult) Check() error {
	cfg := r.cfg
	maxP := cfg.PeerCounts[len(cfg.PeerCounts)-1]
	maxFleet := float64(cfg.Fleets[len(cfg.Fleets)-1])

	resident := findSeries(r.Resident, fmt.Sprintf("resident/p%d", maxP))
	if resident == nil || len(resident.Points) == 0 {
		return errors.New("partition: missing the resident series to assert")
	}
	last := resident.Points[len(resident.Points)-1]
	if bar := cfg.ResidentSlack * maxFleet / float64(maxP); last.Y > bar {
		return fmt.Errorf("partition: at %d nodes the most loaded node holds %.0f of %.0f records (bar %.0f ~ %.1fx fleet/P)",
			maxP, last.Y, maxFleet, bar, cfg.ResidentSlack)
	}

	directed := findSeries(r.XResolve, "xresolve/directed")
	fanout := findSeries(r.XResolve, "xresolve/fanout")
	if directed == nil || fanout == nil {
		return errors.New("partition: missing a cross-domain resolve series to assert")
	}
	i := len(directed.Points) - 1
	if i < 0 || i >= len(fanout.Points) {
		return errors.New("partition: cross-domain resolve series lengths diverge")
	}
	var gain float64
	if directed.Points[i].Y > 0 {
		gain = fanout.Points[i].Y / directed.Points[i].Y
	}
	if gain < cfg.XResolveBar {
		return fmt.Errorf("partition: at %g peers the directed hop beat the fan-out only %.2fx (fanout %.4fs vs directed %.4fs, need >=%gx)",
			directed.Points[i].X, gain, fanout.Points[i].Y, directed.Points[i].Y, cfg.XResolveBar)
	}

	single := findSeries(r.Alloc, "alloc/single")
	part := findSeries(r.Alloc, "alloc/partitioned")
	if single == nil || part == nil {
		return errors.New("partition: missing an allocate series to assert")
	}
	j := len(single.Points) - 1
	if j < 0 || j >= len(part.Points) {
		return errors.New("partition: allocate series lengths diverge")
	}
	if bar := cfg.AllocSlack * single.Points[j].Y; part.Points[j].Y > bar {
		return fmt.Errorf("partition: at %g machines, owned-domain allocate p99 %.4fs exceeds %.1fx the single-node %.4fs",
			single.Points[j].X, part.Points[j].Y, cfg.AllocSlack, single.Points[j].Y)
	}
	return nil
}

// partitionFleetSpec spreads a fleet over cfg.Domains domains.
func partitionFleetSpec(cfg PartitionConfig, n int) registry.FleetSpec {
	domains := make([]string, cfg.Domains)
	for i := range domains {
		domains[i] = fmt.Sprintf("dom%02d", i)
	}
	return registry.FleetSpec{
		N:       n,
		Archs:   []string{"sun"},
		Domains: domains,
		Owners:  []string{"public"},
		Tools:   []string{"tsuprem4"},
		Seed:    1,
	}
}

// PartitionScale runs the three sweeps.
func PartitionScale(cfg PartitionConfig) (PartitionResult, error) {
	if len(cfg.Fleets) == 0 {
		cfg = DefaultPartition()
	}
	res := PartitionResult{cfg: cfg}

	// Leg 1: resident state per node across fleet sizes and node counts.
	for _, peers := range cfg.PeerCounts {
		s := metrics.Series{Label: fmt.Sprintf("resident/p%d", peers)}
		for _, fleet := range cfg.Fleets {
			most, err := partitionResidentPoint(cfg, fleet, peers)
			if err != nil {
				return res, fmt.Errorf("partition: resident p%d fleet %d: %w", peers, fleet, err)
			}
			s.Add(float64(fleet), float64(most))
		}
		res.Resident = append(res.Resident, s)
	}

	// Leg 2: cross-domain resolve, directed vs first-win fan-out. The
	// offered rate is calibrated once per peer count — on the directed
	// mesh — and both planes are then driven at that same rate, so the
	// comparison is load-for-load.
	directedS := metrics.Series{Label: "xresolve/directed"}
	fanoutS := metrics.Series{Label: "xresolve/fanout"}
	for _, peers := range cfg.PeerCounts {
		dp99, fp99, err := partitionResolvePair(cfg, peers)
		if err != nil {
			return res, fmt.Errorf("partition: xresolve peers %d: %w", peers, err)
		}
		directedS.Add(float64(peers), dp99.Seconds())
		fanoutS.Add(float64(peers), fp99.Seconds())
	}
	res.XResolve = append(res.XResolve, directedS, fanoutS)

	// Leg 3: owned-domain allocate, partitioned node vs single node.
	maxP := cfg.PeerCounts[len(cfg.PeerCounts)-1]
	for _, partitioned := range []bool{false, true} {
		label := "alloc/single"
		if partitioned {
			label = "alloc/partitioned"
		}
		s := metrics.Series{Label: label}
		for _, fleet := range cfg.Fleets {
			// Minimum over three repetitions, for the same reason as the
			// resolve leg: these p99s are microseconds, and one host
			// hiccup in a small sample would decide the gate.
			var best time.Duration
			for rep := 0; rep < 3; rep++ {
				p99, err := partitionAllocPoint(cfg, fleet, maxP, partitioned)
				if err != nil {
					return res, fmt.Errorf("partition: %s fleet %d: %w", label, fleet, err)
				}
				if rep == 0 || p99 < best {
					best = p99
				}
			}
			s.Add(float64(fleet), best.Seconds())
		}
		res.Alloc = append(res.Alloc, s)
	}
	return res, nil
}

// partitionResidentPoint splits one fleet across `peers` nodes through the
// rendezvous table (exactly what a partitioned daemon's population filter
// does) and returns the most loaded node's resident record count. Every
// record must land on exactly one node.
func partitionResidentPoint(cfg PartitionConfig, fleet, peers int) (int, error) {
	machines, err := partitionFleetSpec(cfg, fleet).Build(time.Unix(0, 0))
	if err != nil {
		return 0, err
	}
	nodes := make([]string, peers)
	for i := range nodes {
		nodes[i] = fmt.Sprintf("node-%d", i)
	}
	resident := make([]int, peers)
	total := 0
	for i, node := range nodes {
		t := route.New(node)
		t.Reload(nil, nodes)
		for _, m := range machines {
			if t.KeepMachine(m) {
				resident[i]++
				total++
			}
		}
	}
	if total != fleet {
		return 0, fmt.Errorf("records not conserved: %d resident across nodes, fleet %d (a domain is owned by %s)",
			total, fleet, map[bool]string{true: "several nodes", false: "no node"}[total > fleet])
	}
	most := 0
	for _, n := range resident {
		if n > most {
			most = n
		}
	}
	return most, nil
}

// resolveMesh is one cross-domain resolve testbed: a home manager over
// `peers` wire-connected peer managers, each owning one domain's worth of
// white pages. The mesh uses raw local connections (netsim.Local) so the
// measurement isolates the routing plane's protocol and scan work — the
// simulated-latency profiles schedule deliveries on multi-millisecond
// timers that would swamp the microsecond-scale directed hop.
type resolveMesh struct {
	home    *poolmgr.Manager
	mgrs    []*poolmgr.Manager
	queries []*query.Query
	close   func()
}

// partitionResolveMesh builds the testbed. Directed mode gives the home
// manager an ownership table over the peers; fan-out mode leaves it on the
// PR 8 first-win race. In both, every query misses at home and must cross
// the wire.
func partitionResolveMesh(cfg PartitionConfig, peers int, directed bool) (*resolveMesh, error) {
	profile := netsim.Local()
	var servers []*stage.Server
	var remotes []*stage.Remote
	var factories []*poolmgr.LocalFactory
	cleanup := func() {
		for _, r := range remotes {
			_ = r.Close()
		}
		for _, s := range servers {
			s.Close()
		}
		for _, f := range factories {
			f.CloseAll()
		}
	}
	fail := func(err error) (*resolveMesh, error) {
		cleanup()
		return nil, err
	}

	homeDir := directory.New()
	static := map[string]string{}
	mgrs := make([]*poolmgr.Manager, peers)
	queries := make([]*query.Query, peers)
	for i := 0; i < peers; i++ {
		domain := fmt.Sprintf("dom%02d", i)
		db, err := newDB()
		if err != nil {
			return fail(err)
		}
		spec := registry.FleetSpec{
			N: cfg.PeerMachines, Archs: []string{"sun"}, Domains: []string{domain}, Seed: int64(i + 1),
		}
		if err := spec.Populate(db, time.Now()); err != nil {
			return fail(err)
		}
		factory := &poolmgr.LocalFactory{DB: db}
		factories = append(factories, factory)
		m, err := poolmgr.New(poolmgr.Config{Name: fmt.Sprintf("pm-peer-%d", i), Dir: directory.New(), Factory: factory})
		if err != nil {
			return fail(err)
		}
		mgrs[i] = m
		srv, err := stage.ServeOpts(m, "127.0.0.1:0", profile, stage.ServerOptions{Window: cfg.Window})
		if err != nil {
			return fail(err)
		}
		servers = append(servers, srv)
		remote, err := stage.DialRemote(srv.Addr(), profile, 0)
		if err != nil {
			return fail(err)
		}
		remotes = append(remotes, remote)
		homeDir.AddPeer(remote)
		static[domain] = remote.Name()
		q, err := query.ParseBasic(route.Filter(domain))
		if err != nil {
			return fail(err)
		}
		queries[i] = q
	}

	homeCfg := poolmgr.Config{Name: "pm-home", Dir: homeDir, Fanout: peers}
	if directed {
		rt := route.New("pm-home")
		rt.Reload(static, nil)
		homeCfg.Routes = rt
	}
	home, err := poolmgr.New(homeCfg)
	if err != nil {
		return fail(err)
	}

	// Warm every peer's pool so the sweep measures steady-state routing,
	// not first-touch pool creation.
	for i := range queries {
		lease, err := home.Resolve(queries[i])
		if err != nil {
			return fail(fmt.Errorf("warm resolve dom%02d: %w", i, err))
		}
		if err := mgrs[i].Release(lease); err != nil {
			return fail(err)
		}
	}
	return &resolveMesh{home: home, mgrs: mgrs, queries: queries, close: cleanup}, nil
}

// capacity measures the mesh's sustainable resolve throughput: the best of
// three short closed-loop bursts. The best, not the mean — a scheduler
// stall during a burst reads as lost capacity and would set the open-loop
// rate too low to ever load the fan-out plane.
func (mesh *resolveMesh) capacity() (float64, error) {
	const clients, ops, bursts = 4, 50, 3
	best := 0.0
	for b := 0; b < bursts; b++ {
		var wg sync.WaitGroup
		errCh := make(chan error, clients)
		start := time.Now()
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				for i := 0; i < ops; i++ {
					d := (c + i) % len(mesh.queries)
					lease, err := mesh.home.Resolve(mesh.queries[d])
					if err != nil {
						errCh <- err
						return
					}
					if err := mesh.mgrs[d].Release(lease); err != nil {
						errCh <- err
						return
					}
				}
			}(c)
		}
		wg.Wait()
		close(errCh)
		if err := <-errCh; err != nil {
			return 0, err
		}
		if rate := float64(clients*ops) / time.Since(start).Seconds(); rate > best {
			best = rate
		}
	}
	return best, nil
}

// openLoop offers `total` resolves at a fixed rate regardless of how fast
// they complete — the discipline that makes over-capacity operation
// visible as queueing — and returns the p99 resolve latency. Only the
// resolve is timed; the release goes straight to the owning manager so
// both planes pay identical untimed cleanup.
func (mesh *resolveMesh) openLoop(rate float64, total int) (time.Duration, error) {
	rec := metrics.NewRecorder()
	interval := time.Duration(float64(time.Second) / rate)
	var wg sync.WaitGroup
	errCh := make(chan error, total)
	begin := time.Now()
	for k := 0; k < total; k++ {
		if d := time.Until(begin.Add(time.Duration(k) * interval)); d > 0 {
			time.Sleep(d)
		}
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			d := k % len(mesh.queries)
			start := time.Now()
			lease, err := mesh.home.Resolve(mesh.queries[d])
			if err != nil {
				errCh <- err
				return
			}
			rec.Record(time.Since(start))
			if err := mesh.mgrs[d].Release(lease); err != nil {
				errCh <- err
			}
		}(k)
	}
	wg.Wait()
	close(errCh)
	if err := <-errCh; err != nil {
		return 0, err
	}
	return rec.Percentile(99), nil
}

// partitionResolvePair measures one peer count's directed and fan-out p99
// under identical offered load: half the directed plane's calibrated
// capacity. At that rate the directed hop runs at ~50% utilization while
// the fan-out plane — every query costing P probes instead of one — is
// over capacity, and its p99 inflates with the backlog it cannot drain.
//
// Each plane's p99 is the minimum over three repetitions. Host noise (a
// GC cycle, a scheduler stall on a small CI runner) only ever ADDS
// latency, so the minimum is the least-contaminated estimate; the
// fan-out's overload queueing is structural and survives it.
func partitionResolvePair(cfg PartitionConfig, peers int) (directedP99, fanoutP99 time.Duration, err error) {
	const reps = 3
	for rep := 0; rep < reps; rep++ {
		dp99, fp99, err := partitionResolveRep(cfg, peers)
		if err != nil {
			return 0, 0, err
		}
		if rep == 0 || dp99 < directedP99 {
			directedP99 = dp99
		}
		if rep == 0 || fp99 < fanoutP99 {
			fanoutP99 = fp99
		}
	}
	return directedP99, fanoutP99, nil
}

// partitionResolveRep is one repetition of the directed/fan-out pair.
func partitionResolveRep(cfg PartitionConfig, peers int) (directedP99, fanoutP99 time.Duration, err error) {
	dm, err := partitionResolveMesh(cfg, peers, true)
	if err != nil {
		return 0, 0, err
	}
	rate, err := dm.capacity()
	if err != nil {
		dm.close()
		return 0, 0, err
	}
	rate /= 2
	directedP99, err = dm.openLoop(rate, cfg.ResolveOps)
	dm.close()
	if err != nil {
		return 0, 0, err
	}

	fm, err := partitionResolveMesh(cfg, peers, false)
	if err != nil {
		return 0, 0, err
	}
	fanoutP99, err = fm.openLoop(rate, cfg.ResolveOps)
	fm.close()
	if err != nil {
		return 0, 0, err
	}
	return directedP99, fanoutP99, nil
}

// partitionAllocPoint measures owned-domain allocate p99 on one node:
// either a single node holding the whole fleet (the baseline) or a
// partitioned node holding only the fleet/P slice its rendezvous table
// assigns it, allocating from a domain it owns.
func partitionAllocPoint(cfg PartitionConfig, fleet, peers int, partitioned bool) (time.Duration, error) {
	machines, err := partitionFleetSpec(cfg, fleet).Build(time.Unix(0, 0))
	if err != nil {
		return 0, err
	}
	var rt *route.Table
	if partitioned {
		nodes := make([]string, peers)
		for i := range nodes {
			nodes[i] = fmt.Sprintf("node-%d", i)
		}
		rt = route.New("node-0")
		rt.Reload(nil, nodes)
	}
	db, err := newDB()
	if err != nil {
		return 0, err
	}
	for _, m := range machines {
		if rt != nil && !rt.KeepMachine(m) {
			continue
		}
		if err := db.Add(m); err != nil {
			return 0, err
		}
	}
	// Allocate from a domain this node owns; the same domain exists with
	// the same machine count in the single-node baseline.
	domain := ""
	for i := 0; i < cfg.Domains; i++ {
		d := fmt.Sprintf("dom%02d", i)
		if rt == nil || rt.Owns(d) {
			domain = d
			break
		}
	}
	if domain == "" {
		return 0, errors.New("the partitioned node owns no domain")
	}
	q, err := query.ParseBasic(route.Filter(domain))
	if err != nil {
		return 0, err
	}

	factory := &poolmgr.LocalFactory{DB: db}
	defer factory.CloseAll()
	pcfg := poolmgr.Config{Name: "node-0", Dir: directory.New(), Factory: factory, Routes: rt}
	m, err := poolmgr.New(pcfg)
	if err != nil {
		return 0, err
	}
	lease, err := m.Resolve(q) // warm the pool
	if err != nil {
		return 0, err
	}
	if err := m.Release(lease); err != nil {
		return 0, err
	}

	rec := metrics.NewRecorder()
	var wg sync.WaitGroup
	errCh := make(chan error, cfg.Clients)
	for c := 0; c < cfg.Clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < cfg.OpsPerClient; i++ {
				start := time.Now()
				lease, err := m.Resolve(q)
				if err != nil {
					errCh <- err
					return
				}
				rec.Record(time.Since(start))
				if err := m.Release(lease); err != nil {
					errCh <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errCh)
	if err := <-errCh; err != nil {
		return 0, err
	}
	return rec.Percentile(99), nil
}
