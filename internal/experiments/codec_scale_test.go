package experiments

import (
	"testing"

	"actyp/internal/metrics"
)

// TestCodecScaleQuick smoke-runs the codec sweep at a tiny scale and
// checks both sweeps produce one series per codec with every point
// populated by a positive rate.
func TestCodecScaleQuick(t *testing.T) {
	cfg := CodecConfig{
		Machines:     200,
		Codecs:       []string{"binary", "json"},
		PayloadBytes: []int{0, 512},
		Clients:      2,
		OpsPerClient: 3,
		FrameIters:   200,
	}
	ops, frames, err := CodecScale(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(ops) != 2 || len(frames) != 2 {
		t.Fatalf("series counts = %d ops, %d frames; want 2 each", len(ops), len(frames))
	}
	all := append(append([]metrics.Series{}, ops...), frames...)
	for _, s := range all {
		if s.Label != "binary" && s.Label != "json" {
			t.Errorf("unexpected series label %q", s.Label)
		}
		if len(s.Points) != len(cfg.PayloadBytes) {
			t.Errorf("series %q has %d points, want %d", s.Label, len(s.Points), len(cfg.PayloadBytes))
			continue
		}
		for i, p := range s.Points {
			if p.Y <= 0 {
				t.Errorf("series %q point %d is %v; want positive rate", s.Label, i, p.Y)
			}
		}
	}
}
