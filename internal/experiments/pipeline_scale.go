package experiments

import (
	"fmt"
	"time"

	"actyp/internal/core"
	"actyp/internal/metrics"
	"actyp/internal/pool"
	"actyp/internal/registry"
)

// PipelineScaleConfig parameterizes the lease-pipeline scale experiment:
// the end-to-end Ask -> Allocate -> Release hot path (query manager ->
// pool manager -> resource pool -> shadow account) measured against fleet
// size, per pool allocation engine. One pool aggregates the whole fleet —
// the Figure 6 worst case — so the allocator, not the registry, is the
// bottleneck under test.
type PipelineScaleConfig struct {
	Sizes        []int    // fleet sizes to sweep
	Engines      []string // pool engines to compare
	Clients      int      // concurrent closed-loop clients
	OpsPerClient int      // measured requests per client per point
}

// DefaultPipelineScale sweeps 1k/10k/100k machines on both engines under
// 8-way contention.
func DefaultPipelineScale() PipelineScaleConfig {
	return PipelineScaleConfig{
		Sizes:        []int{1000, 10000, 100000},
		Engines:      []string{pool.EngineOracle, pool.EngineIndexed},
		Clients:      8,
		OpsPerClient: 40,
	}
}

// PipelineScale runs the sweep and returns one series per engine: mean
// seconds per Request+Release cycle at each fleet size.
func PipelineScale(cfg PipelineScaleConfig) ([]metrics.Series, error) {
	if cfg.Clients <= 0 {
		cfg.Clients = 8
	}
	if cfg.OpsPerClient <= 0 {
		cfg.OpsPerClient = 40
	}
	const criteria = "punch.rsrc.arch = sun"
	var out []metrics.Series
	for _, engine := range cfg.Engines {
		s := metrics.Series{Label: engine}
		for _, size := range cfg.Sizes {
			db, err := newDB()
			if err != nil {
				return out, err
			}
			if err := registry.HomogeneousFleetSpec(size).Populate(db, time.Now()); err != nil {
				return out, err
			}
			svc, err := core.New(core.Options{DB: db, PoolEngine: engine})
			if err != nil {
				return out, err
			}
			// Warm the single fleet-wide pool so the sweep measures the
			// steady-state lease path, not first-touch creation.
			if err := svc.Precreate(criteria); err != nil {
				svc.Close()
				return out, err
			}
			rec := metrics.NewRecorder()
			err = closedLoop(cfg.Clients, cfg.OpsPerClient, rec, func(client, iter int) error {
				g, err := svc.Request(criteria)
				if err != nil {
					return fmt.Errorf("engine %s size %d: %w", engine, size, err)
				}
				return svc.Release(g)
			})
			svc.Close()
			if err != nil {
				return out, err
			}
			s.Add(float64(size), rec.Mean().Seconds())
		}
		out = append(out, s)
	}
	return out, nil
}
