package experiments

import (
	"fmt"
	"time"

	"actyp/internal/core"
	"actyp/internal/metrics"
	"actyp/internal/querymgr"
	"actyp/internal/registry"
	"actyp/internal/schedule"
)

// Ablation drivers for the design decisions DESIGN.md calls out. Each
// returns series comparing the paper's choice against an alternative.

// AblationFirstMatch compares the two reintegration QoS policies of
// Section 6 on composite queries: WaitAll (reintegrate every fragment,
// return the best) versus FirstMatch (return the first available match).
func AblationFirstMatch(machines, clients, perClient int, scanCost time.Duration) ([]metrics.Series, error) {
	var out []metrics.Series
	for _, mode := range []struct {
		label string
		mode  querymgr.QoS
	}{{"wait-all", querymgr.WaitAll}, {"first-match", querymgr.FirstMatch}} {
		db, err := newDB()
		if err != nil {
			return out, err
		}
		if err := registry.DefaultFleetSpec(machines).Populate(db, time.Now()); err != nil {
			return out, err
		}
		svc, err := core.New(core.Options{DB: db, ScanCost: scanCost, Mode: mode.mode})
		if err != nil {
			return out, err
		}
		rec := metrics.NewRecorder()
		err = closedLoop(clients, perClient, rec, func(client, iter int) error {
			g, err := svc.Request("punch.rsrc.arch = sun | hp | alpha | x86")
			if err != nil {
				return err
			}
			return svc.Release(g)
		})
		svc.Close()
		if err != nil {
			return out, err
		}
		s := metrics.Series{Label: mode.label}
		s.Add(float64(clients), rec.Mean().Seconds())
		out = append(out, s)
	}
	return out, nil
}

// AblationStaticPools compares dynamic first-touch pool creation against
// statically pre-created pools: the first query to a cold criteria pays
// the aggregation walk, which static pre-aggregation hides. The walk it
// ablates is the paper's linear one, so this driver pins the white pages
// to the locked reference engine — on the sharded, index-accelerated
// engine the aggregation is no longer linear and the effect (by design)
// all but disappears.
func AblationStaticPools(machines, pools int, scanCost time.Duration) ([]metrics.Series, error) {
	measure := func(warm bool) (first, rest time.Duration, err error) {
		db := registry.NewDBWith(registry.NewLocked())
		if err := registry.HomogeneousFleetSpec(machines).Populate(db, time.Now()); err != nil {
			return 0, 0, err
		}
		svc, err := core.New(core.Options{DB: db, ScanCost: scanCost, Seed: 1})
		if err != nil {
			return 0, 0, err
		}
		defer svc.Close()
		if err := svc.StripePools(pools); err != nil {
			return 0, 0, err
		}
		if warm {
			if err := svc.WarmPools(pools); err != nil {
				return 0, 0, err
			}
		}
		restRec := metrics.NewRecorder()
		for k := 0; k < pools; k++ {
			q := fmt.Sprintf("punch.rsrc.pool = %d", k)
			start := time.Now()
			g, err := svc.Request(q)
			if err != nil {
				return 0, 0, err
			}
			d := time.Since(start)
			if k == 0 {
				first = d
			} else {
				restRec.Record(d)
			}
			if err := svc.Release(g); err != nil {
				return 0, 0, err
			}
		}
		return first, restRec.Mean(), nil
	}

	coldFirst, coldRest, err := measure(false)
	if err != nil {
		return nil, err
	}
	warmFirst, warmRest, err := measure(true)
	if err != nil {
		return nil, err
	}
	dynamic := metrics.Series{Label: "dynamic"}
	dynamic.Add(0, coldFirst.Seconds())
	dynamic.Add(1, coldRest.Seconds())
	static := metrics.Series{Label: "static"}
	static.Add(0, warmFirst.Seconds())
	static.Add(1, warmRest.Seconds())
	return []metrics.Series{dynamic, static}, nil
}

// AblationSelection compares the paper's linear search against a
// pre-sorted scan for pool-internal scheduling: it reports nanoseconds per
// selection for each strategy over one synthetic candidate population.
func AblationSelection(poolSize, rounds int) ([]metrics.Series, error) {
	if poolSize <= 0 || rounds <= 0 {
		return nil, fmt.Errorf("experiments: bad ablation config")
	}
	cands := make([]*schedule.Candidate, poolSize)
	for i := range cands {
		cands[i] = &schedule.Candidate{
			Name:  fmt.Sprintf("m%04d", i),
			Load:  float64(i%17) / 10,
			Speed: float64(200 + i%400),
		}
	}

	linear := metrics.Series{Label: "linear-scan"}
	start := time.Now()
	for r := 0; r < rounds; r++ {
		schedule.SelectLinear(cands, schedule.LeastLoad{}, nil)
	}
	linear.Add(float64(poolSize), float64(time.Since(start).Nanoseconds())/float64(rounds))

	// Pre-sorted: sort once (amortized by the background scheduling
	// process), then pick the first free candidate per query.
	sorted := metrics.Series{Label: "presorted"}
	cp := make([]*schedule.Candidate, len(cands))
	copy(cp, cands)
	schedule.Sort(cp, schedule.LeastLoad{})
	start = time.Now()
	for r := 0; r < rounds; r++ {
		for _, c := range cp {
			if !c.Busy {
				break
			}
		}
	}
	sorted.Add(float64(poolSize), float64(time.Since(start).Nanoseconds())/float64(rounds))
	return []metrics.Series{linear, sorted}, nil
}
