package experiments

import (
	"testing"
	"time"

	"actyp/internal/netsim"
)

// TestTransportScaleShape runs the sweep at reduced scale and asserts the
// result the multiplexed transport exists for: with concurrent callers
// sharing one connection, throughput rises well above the serial
// single-caller baseline because round trips overlap in flight.
func TestTransportScaleShape(t *testing.T) {
	cfg := TransportConfig{
		Machines:     800,
		Windows:      []int{1, 8},
		Clients:      []int{1, 8},
		OpsPerClient: 10,
		Profile:      netsim.Profile{Latency: 2 * time.Millisecond, Seed: 1},
	}
	series, err := TransportScale(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 2 {
		t.Fatalf("series = %d, want 2", len(series))
	}
	for i, s := range series {
		if len(s.Points) != 2 {
			t.Fatalf("series %d points = %v", i, s.Points)
		}
		for _, p := range s.Points {
			if p.Y <= 0 {
				t.Fatalf("series %q has non-positive throughput: %v", s.Label, p)
			}
		}
	}
	serial := series[0].Points[0].Y // window=1, one caller: the old wire behaviour
	mux := series[1].Points[1].Y    // window=8, eight callers in flight
	if mux < 2*serial {
		t.Errorf("8 in-flight callers = %.0f ops/s, want >= 2x serial baseline %.0f ops/s", mux, serial)
	}
}
