package experiments

import (
	"fmt"
	"sync"
	"time"

	"actyp/internal/core"
	"actyp/internal/metrics"
	"actyp/internal/pool"
	"actyp/internal/query"
	"actyp/internal/registry"
	"actyp/internal/wire"
)

// Registry backend, pool engine, and wire codec selection shared by every
// experiment driver, settable from the daemons' -registry-backend /
// -registry-shards / -pool-engine / -wire-codec flags.
var (
	regMu           sync.Mutex
	registryBackend = registry.BackendSharded
	registryShards  = 0
	poolEngine      = ""
	refreshMode     = ""
	wireCodecs      []wire.Codec
)

// UseRegistry selects the white-pages backend the experiment drivers
// build. It validates the kind eagerly so flag errors surface at startup.
func UseRegistry(kind string, shards int) error {
	if _, err := registry.OpenBackend(kind, shards); err != nil {
		return err
	}
	regMu.Lock()
	defer regMu.Unlock()
	if kind != "" {
		registryBackend = kind
	}
	registryShards = shards
	return nil
}

// UsePoolEngine selects the pool allocation engine the experiment drivers
// configure. Note the figures that model the 2001-era linear search with
// a positive ScanCost stay on the oracle engine regardless — that is the
// behaviour under study (see pool.Config.ScanCost).
func UsePoolEngine(kind string) error {
	if err := pool.ValidateEngine(kind); err != nil {
		return err
	}
	regMu.Lock()
	defer regMu.Unlock()
	poolEngine = kind
	return nil
}

// PoolEngine returns the configured pool engine kind ("" = default).
func PoolEngine() string {
	regMu.Lock()
	defer regMu.Unlock()
	return poolEngine
}

// UseRefreshMode selects the pool freshness mode the experiment drivers
// configure ("" = the core default, events). The refresh figure sweeps
// both modes regardless — comparing them is that figure's job.
func UseRefreshMode(mode string) error {
	if err := core.ValidateRefreshMode(mode); err != nil {
		return err
	}
	regMu.Lock()
	defer regMu.Unlock()
	refreshMode = mode
	return nil
}

// RefreshMode returns the configured freshness mode ("" = default).
func RefreshMode() string {
	regMu.Lock()
	defer regMu.Unlock()
	return refreshMode
}

// UseWireCodec pins the wire-codec preference the wire-speaking experiment
// drivers (transport) negotiate with; "" or "auto" keeps the default. The
// codec figure ignores it — comparing codecs is that figure's job.
func UseWireCodec(spec string) error {
	codecs, err := wire.ParseCodecs(spec)
	if err != nil {
		return err
	}
	regMu.Lock()
	defer regMu.Unlock()
	wireCodecs = codecs
	return nil
}

// WireCodecs returns the configured codec preference (nil = default).
func WireCodecs() []wire.Codec {
	regMu.Lock()
	defer regMu.Unlock()
	return wireCodecs
}

// newDB builds an empty white-pages database on the selected backend.
func newDB() (*registry.DB, error) {
	regMu.Lock()
	kind, shards := registryBackend, registryShards
	regMu.Unlock()
	b, err := registry.OpenBackend(kind, shards)
	if err != nil {
		return nil, err
	}
	return registry.NewDBWith(b), nil
}

// StripePoolParam assigns every machine a "pool" parameter in [0, stripes)
// by name order — the Figures 4/5 striping, shared by the registry scale
// sweep and the root BenchmarkRegistry* benchmarks so both measure the
// same workload.
func StripePoolParam(db *registry.DB, stripes int) error {
	if stripes <= 0 {
		return fmt.Errorf("experiments: stripe count must be positive, got %d", stripes)
	}
	for i, name := range db.Names() {
		if err := db.SetParam(name, "pool", query.NumAttr(float64(i%stripes))); err != nil {
			return err
		}
	}
	return nil
}

// RegistryScaleConfig parameterizes the registry scale experiment: the
// white-pages hot path (striped Select plus the Section 5.2.3 Take
// protocol) measured against fleet size, per backend.
type RegistryScaleConfig struct {
	Sizes        []int    // fleet sizes to sweep
	Backends     []string // backend kinds to compare
	Shards       int      // shard count for the sharded backend (0: auto)
	Clients      int      // concurrent closed-loop clients
	OpsPerClient int      // measured operations per client per point
	TakeLimit    int      // machines claimed per Take
	Stripes      int      // distinct "pool" parameter values
}

// DefaultRegistryScale sweeps 1k/10k/100k machines on both backends.
func DefaultRegistryScale() RegistryScaleConfig {
	return RegistryScaleConfig{
		Sizes:        []int{1000, 10000, 100000},
		Backends:     []string{registry.BackendLocked, registry.BackendSharded},
		Clients:      8,
		OpsPerClient: 40,
		TakeLimit:    8,
		Stripes:      64,
	}
}

// RegistryScale runs the sweep and returns one series per backend: mean
// seconds per Select+Take+Release cycle at each fleet size. A zero Shards
// inherits the count configured via UseRegistry (the -registry-shards
// flag), which itself defaults to auto.
func RegistryScale(cfg RegistryScaleConfig) ([]metrics.Series, error) {
	if cfg.TakeLimit <= 0 {
		cfg.TakeLimit = 8
	}
	if cfg.Stripes <= 0 {
		cfg.Stripes = 64
	}
	if cfg.Shards == 0 {
		regMu.Lock()
		cfg.Shards = registryShards
		regMu.Unlock()
	}
	var out []metrics.Series
	for _, kind := range cfg.Backends {
		s := metrics.Series{Label: kind}
		for _, size := range cfg.Sizes {
			backend, err := registry.OpenBackend(kind, cfg.Shards)
			if err != nil {
				return out, err
			}
			db := registry.NewDBWith(backend)
			if err := registry.DefaultFleetSpec(size).Populate(db, time.Now()); err != nil {
				return out, err
			}
			if err := StripePoolParam(db, cfg.Stripes); err != nil {
				return out, err
			}
			rec := metrics.NewRecorder()
			err = closedLoop(cfg.Clients, cfg.OpsPerClient, rec, func(client, iter int) error {
				k := (client*cfg.OpsPerClient + iter) % cfg.Stripes
				q := query.New().Set("punch.rsrc.pool", query.EqNum(float64(k)))
				if got := db.Select(q); len(got) == 0 {
					return fmt.Errorf("stripe %d selected no machines", k)
				}
				inst := fmt.Sprintf("scale-pool-%d", client)
				taken := db.Take(q, inst, cfg.TakeLimit)
				if len(taken) == 0 {
					// Another client may hold the whole stripe; that is
					// the protocol working, not an error.
					return nil
				}
				names := make([]string, len(taken))
				for j, m := range taken {
					names[j] = m.Static.Name
				}
				if rel := db.Release(inst, names...); rel != len(names) {
					return fmt.Errorf("released %d of %d", rel, len(names))
				}
				return nil
			})
			if err != nil {
				return out, err
			}
			s.Add(float64(size), rec.Mean().Seconds())
		}
		out = append(out, s)
	}
	return out, nil
}
