// Package experiments implements the controlled experiments of Section 7.
// Each FigN function reproduces the setup behind the corresponding figure
// of the paper and returns the plotted series; cmd/actyp-bench prints them
// as text tables and bench_test.go exercises them under testing.B.
//
// The paper's testbed (12-processor AlphaServer + UltraSPARC clients, with
// one experiment spanning a Purdue-UPC transatlantic link) is replaced by
// one host with netsim latency injection, and the 2001-era linear-search
// cost is modelled by the pools' ScanCost knob. Absolute response times
// therefore differ from the paper's; the shapes — fewer seconds with more
// pools, linear growth with pool size, gains from splitting and
// replication — are what these drivers reproduce.
package experiments

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"actyp/internal/core"
	"actyp/internal/metrics"
	"actyp/internal/netsim"
	"actyp/internal/registry"
	"actyp/internal/workload"
)

// Defaults shared by the figure drivers. The paper's database holds 3,200
// machines; the drivers accept smaller fleets for quick runs.
const (
	PaperMachines   = 3200
	DefaultScanCost = 2 * time.Microsecond
)

// newService builds a service over a fresh homogeneous fleet, on the
// registry backend selected via UseRegistry.
func newService(machines int, scanCost time.Duration, seed int64) (*core.Service, error) {
	db, err := newDB()
	if err != nil {
		return nil, err
	}
	if err := registry.HomogeneousFleetSpec(machines).Populate(db, time.Now()); err != nil {
		return nil, err
	}
	return core.New(core.Options{DB: db, ScanCost: scanCost, Seed: seed, PoolEngine: PoolEngine(), RefreshMode: RefreshMode()})
}

// closedLoop runs `clients` concurrent closed-loop clients, each executing
// `perClient` iterations of do, and records the latency of each iteration.
func closedLoop(clients, perClient int, rec *metrics.Recorder, do func(client, iter int) error) error {
	var wg sync.WaitGroup
	errCh := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				start := time.Now()
				if err := do(c, i); err != nil {
					errCh <- fmt.Errorf("client %d iter %d: %w", c, i, err)
					return
				}
				rec.Record(time.Since(start))
			}
		}(c)
	}
	wg.Wait()
	close(errCh)
	return <-errCh
}

// Fig4Config parameterizes the LAN pool-count sweep.
type Fig4Config struct {
	Machines         int            // database size (paper: 3,200)
	Pools            []int          // pool counts to sweep (paper: 2..16)
	Clients          int            // concurrent closed-loop clients
	QueriesPerClient int            // measured queries per client per point
	ScanCost         time.Duration  // per-entry linear-search cost
	Profile          netsim.Profile // injected network (paper: LAN)
	Seed             int64
}

// DefaultFig4 mirrors the paper's setup at full scale.
func DefaultFig4() Fig4Config {
	return Fig4Config{
		Machines:         PaperMachines,
		Pools:            []int{2, 4, 6, 8, 10, 12, 14, 16},
		Clients:          32,
		QueriesPerClient: 10,
		ScanCost:         DefaultScanCost,
		Profile:          netsim.LAN(),
		Seed:             1,
	}
}

// Fig4 measures mean response time as a function of the number of pools in
// a LAN configuration: machines are striped uniformly across the pools and
// client queries are distributed randomly across pools.
func Fig4(cfg Fig4Config) (metrics.Series, error) {
	series := metrics.Series{Label: fmt.Sprintf("clients=%d", cfg.Clients)}
	for _, pools := range cfg.Pools {
		mean, err := poolSweepPoint(cfg.Machines, pools, cfg.Clients, cfg.QueriesPerClient, cfg.ScanCost, cfg.Profile, cfg.Seed)
		if err != nil {
			return series, err
		}
		series.Add(float64(pools), mean.Seconds())
	}
	return series, nil
}

// Fig5Config parameterizes the WAN pool-count sweep.
type Fig5Config struct {
	Machines         int
	Pools            []int
	ClientCounts     []int // one plotted series per count (paper: 8/16/32/64)
	QueriesPerClient int
	ScanCost         time.Duration
	Profile          netsim.Profile // paper: transatlantic WAN
	Seed             int64
}

// DefaultFig5 mirrors the paper's WAN experiment.
func DefaultFig5() Fig5Config {
	return Fig5Config{
		Machines:         PaperMachines,
		Pools:            []int{1, 2, 4, 8, 16},
		ClientCounts:     []int{8, 16, 32, 64},
		QueriesPerClient: 5,
		ScanCost:         DefaultScanCost,
		Profile:          netsim.WAN(),
		Seed:             1,
	}
}

// Fig5 is Fig4 across a wide-area network: multiple pools still help, but
// network latency bounds the improvement.
func Fig5(cfg Fig5Config) ([]metrics.Series, error) {
	var out []metrics.Series
	for _, clients := range cfg.ClientCounts {
		s := metrics.Series{Label: fmt.Sprintf("clients=%d", clients)}
		for _, pools := range cfg.Pools {
			mean, err := poolSweepPoint(cfg.Machines, pools, clients, cfg.QueriesPerClient, cfg.ScanCost, cfg.Profile, cfg.Seed)
			if err != nil {
				return out, err
			}
			s.Add(float64(pools), mean.Seconds())
		}
		out = append(out, s)
	}
	return out, nil
}

// poolSweepPoint measures one (pools, clients) point: a fresh service with
// the machines striped across `pools` pools, served over TCP with the given
// network profile, hammered by closed-loop clients that pick pools at
// random.
func poolSweepPoint(machines, pools, clients, perClient int, scanCost time.Duration, profile netsim.Profile, seed int64) (time.Duration, error) {
	svc, err := newService(machines, scanCost, seed)
	if err != nil {
		return 0, err
	}
	defer svc.Close()
	if err := svc.StripePools(pools); err != nil {
		return 0, err
	}
	if err := svc.WarmPools(pools); err != nil {
		return 0, err
	}
	srv, err := core.Serve(svc, "127.0.0.1:0", profile)
	if err != nil {
		return 0, err
	}
	defer srv.Close()

	conns := make([]*core.Client, clients)
	for i := range conns {
		c, err := core.Dial(srv.Addr(), profile)
		if err != nil {
			return 0, err
		}
		defer c.Close()
		conns[i] = c
	}

	rec := metrics.NewRecorder()
	var rngMu sync.Mutex
	rng := rand.New(rand.NewSource(seed))
	err = closedLoop(clients, perClient, rec, func(client, iter int) error {
		rngMu.Lock()
		k := rng.Intn(pools)
		rngMu.Unlock()
		g, err := conns[client].Request(fmt.Sprintf("punch.rsrc.pool = %d", k))
		if err != nil {
			return err
		}
		return conns[client].Release(g)
	})
	if err != nil {
		return 0, err
	}
	return rec.Mean(), nil
}

// Fig6Config parameterizes the pool-size experiment.
type Fig6Config struct {
	PoolSizes        []int // one series per size (paper: up to 3,200)
	Clients          []int // x axis (paper: 1..70)
	QueriesPerClient int
	ScanCost         time.Duration
	Seed             int64
}

// DefaultFig6 mirrors the paper's single-pool bottleneck experiment.
func DefaultFig6() Fig6Config {
	return Fig6Config{
		PoolSizes:        []int{800, 1600, 3200},
		Clients:          []int{1, 10, 20, 30, 40, 50, 60, 70},
		QueriesPerClient: 10,
		ScanCost:         DefaultScanCost,
		Seed:             1,
	}
}

// Fig6 measures response time as a function of pool size under continuous
// client load: all machines aggregate into one pool, so every query pays
// the full linear search and queries serialize on the pool — response time
// grows with both pool size and client count.
func Fig6(cfg Fig6Config) ([]metrics.Series, error) {
	var out []metrics.Series
	for _, size := range cfg.PoolSizes {
		s := metrics.Series{Label: fmt.Sprintf("pool=%d", size)}
		for _, clients := range cfg.Clients {
			svc, err := newService(size, cfg.ScanCost, cfg.Seed)
			if err != nil {
				return out, err
			}
			if err := svc.Precreate("punch.rsrc.arch = sun"); err != nil {
				svc.Close()
				return out, err
			}
			rec := metrics.NewRecorder()
			err = closedLoop(clients, cfg.QueriesPerClient, rec, func(client, iter int) error {
				g, err := svc.Request("punch.rsrc.arch = sun")
				if err != nil {
					return err
				}
				return svc.Release(g)
			})
			svc.Close()
			if err != nil {
				return out, err
			}
			s.Add(float64(clients), rec.Mean().Seconds())
		}
		out = append(out, s)
	}
	return out, nil
}

// Fig7Config parameterizes the splitting experiment.
type Fig7Config struct {
	Machines         int   // the pool to split (paper: 3,200)
	Splits           []int // 1 = unsplit, then 2 and 4
	Clients          []int
	QueriesPerClient int
	ScanCost         time.Duration
	Seed             int64
}

// DefaultFig7 mirrors the paper's splitting experiment.
func DefaultFig7() Fig7Config {
	return Fig7Config{
		Machines:         PaperMachines,
		Splits:           []int{1, 2, 4},
		Clients:          []int{10, 20, 30, 40, 50, 60, 70},
		QueriesPerClient: 10,
		ScanCost:         DefaultScanCost,
		Seed:             1,
	}
}

// Fig7 measures the effect of splitting a hot pool: the 3,200-machine pool
// is split into two pools of 1,600 and four pools of 800, whose searches
// proceed concurrently.
func Fig7(cfg Fig7Config) ([]metrics.Series, error) {
	var out []metrics.Series
	for _, split := range cfg.Splits {
		label := "unsplit"
		if split > 1 {
			label = fmt.Sprintf("split=%dx%d", split, cfg.Machines/split)
		}
		s := metrics.Series{Label: label}
		for _, clients := range cfg.Clients {
			svc, err := newService(cfg.Machines, cfg.ScanCost, cfg.Seed)
			if err != nil {
				return out, err
			}
			if err := svc.Precreate("punch.rsrc.arch = sun"); err != nil {
				svc.Close()
				return out, err
			}
			if split > 1 {
				if err := svc.SplitPool("punch.rsrc.arch = sun", split); err != nil {
					svc.Close()
					return out, err
				}
			}
			rec := metrics.NewRecorder()
			err = closedLoop(clients, cfg.QueriesPerClient, rec, func(client, iter int) error {
				g, err := svc.Request("punch.rsrc.arch = sun")
				if err != nil {
					return err
				}
				return svc.Release(g)
			})
			svc.Close()
			if err != nil {
				return out, err
			}
			s.Add(float64(clients), rec.Mean().Seconds())
		}
		out = append(out, s)
	}
	return out, nil
}

// Fig8Config parameterizes the replication experiment.
type Fig8Config struct {
	Machines         int
	Replicas         []int // concurrent pool processes (paper: 1, 2, 4)
	Clients          []int
	QueriesPerClient int
	ScanCost         time.Duration
	Seed             int64
}

// DefaultFig8 mirrors the paper's replication experiment.
func DefaultFig8() Fig8Config {
	return Fig8Config{
		Machines:         PaperMachines,
		Replicas:         []int{1, 2, 4},
		Clients:          []int{10, 20, 30, 40, 50, 60, 70},
		QueriesPerClient: 10,
		ScanCost:         DefaultScanCost,
		Seed:             1,
	}
}

// Fig8 measures the effect of replicating a hot pool: replicas contain the
// same 3,200 machines and preserve scheduling integrity through an
// instance-specific bias, so the pool's throughput scales with the number
// of concurrent scheduling processes.
func Fig8(cfg Fig8Config) ([]metrics.Series, error) {
	var out []metrics.Series
	for _, replicas := range cfg.Replicas {
		s := metrics.Series{Label: fmt.Sprintf("processes=%d", replicas)}
		for _, clients := range cfg.Clients {
			svc, err := newService(cfg.Machines, cfg.ScanCost, cfg.Seed)
			if err != nil {
				return out, err
			}
			if err := svc.Precreate("punch.rsrc.arch = sun"); err != nil {
				svc.Close()
				return out, err
			}
			if replicas > 1 {
				if err := svc.ReplicatePool("punch.rsrc.arch = sun", replicas); err != nil {
					svc.Close()
					return out, err
				}
			}
			rec := metrics.NewRecorder()
			err = closedLoop(clients, cfg.QueriesPerClient, rec, func(client, iter int) error {
				g, err := svc.Request("punch.rsrc.arch = sun")
				if err != nil {
					return err
				}
				return svc.Release(g)
			})
			svc.Close()
			if err != nil {
				return out, err
			}
			s.Add(float64(clients), rec.Mean().Seconds())
		}
		out = append(out, s)
	}
	return out, nil
}

// Fig9Config parameterizes the workload characterization.
type Fig9Config struct {
	Runs    int // paper: 236,222
	Buckets int // histogram resolution over [0, MaxCPU)
	MaxCPU  float64
	Seed    int64
}

// DefaultFig9 mirrors Figure 9's axes (truncated at 1,000 CPU seconds).
func DefaultFig9() Fig9Config {
	return Fig9Config{Runs: workload.PaperRunCount, Buckets: 100, MaxCPU: 1000, Seed: 1}
}

// Fig9 regenerates the CPU-time distribution of PUNCH runs from the fitted
// mixture model: a histogram over [0, MaxCPU) plus the summary statistics
// that characterize the tail the plot truncates.
func Fig9(cfg Fig9Config) (metrics.Series, workload.Stats, error) {
	if cfg.Runs <= 0 || cfg.Buckets <= 0 || cfg.MaxCPU <= 0 {
		return metrics.Series{}, workload.Stats{}, fmt.Errorf("experiments: bad fig9 config %+v", cfg)
	}
	model := workload.NewCPUTimeModel(cfg.Seed)
	samples := model.SampleN(cfg.Runs)
	hist, err := metrics.NewHistogram(0, cfg.MaxCPU, cfg.Buckets)
	if err != nil {
		return metrics.Series{}, workload.Stats{}, err
	}
	for _, v := range samples {
		if v < cfg.MaxCPU { // the figure truncates the axis; tail summarized separately
			hist.Observe(v)
		}
	}
	s := metrics.Series{Label: "runs"}
	for _, b := range hist.Buckets() {
		s.Add(b.Edge, float64(b.Count))
	}
	return s, workload.Summarize(samples), nil
}
