package experiments

import (
	"bytes"
	"fmt"
	"net"
	"strings"
	"time"

	"actyp/internal/core"
	"actyp/internal/metrics"
	"actyp/internal/netsim"
	"actyp/internal/wire"
)

// CodecConfig parameterizes the wire-codec experiment: the same
// Request+Release traffic is pushed through a server and client pinned to
// one codec at a time, at several request payload sizes (padding rides in
// the QueryRequest's visited list, which the service ignores), so the
// end-to-end ops/s series isolates the per-frame encode/decode cost the
// binary codec removes. A second, socket-free sweep measures raw frames/s
// through each codec's encode+decode round trip at the same payload
// sizes.
type CodecConfig struct {
	Machines     int      // fleet size behind the service
	Codecs       []string // codec names to sweep (x series)
	PayloadBytes []int    // request padding sizes (x axis)
	Clients      int      // concurrent callers sharing ONE connection
	OpsPerClient int      // measured Request+Release cycles per caller per point
	FrameIters   int      // encode/decode round trips per point in the frames sweep
	Profile      netsim.Profile
}

// DefaultCodec sweeps binary against JSON on a 5k-machine fleet with the
// zero-latency profile, so codec CPU — not propagation — dominates.
func DefaultCodec() CodecConfig {
	return CodecConfig{
		Machines:     5000,
		Codecs:       []string{"binary", "json"},
		PayloadBytes: []int{0, 1024, 8192},
		Clients:      8,
		OpsPerClient: 60,
		FrameIters:   20000,
		Profile:      netsim.Local(),
	}
}

// CodecScale runs both sweeps and returns (end-to-end ops/s series,
// wire-level frames/s series), one series per codec, payload bytes on the
// x axis.
func CodecScale(cfg CodecConfig) (ops, frames []metrics.Series, err error) {
	if cfg.Machines <= 0 {
		cfg.Machines = 5000
	}
	if len(cfg.Codecs) == 0 {
		cfg.Codecs = []string{"binary", "json"}
	}
	if len(cfg.PayloadBytes) == 0 {
		cfg.PayloadBytes = []int{0, 1024, 8192}
	}
	if cfg.Clients <= 0 {
		cfg.Clients = 8
	}
	if cfg.OpsPerClient <= 0 {
		cfg.OpsPerClient = 60
	}
	if cfg.FrameIters <= 0 {
		cfg.FrameIters = 20000
	}
	for _, name := range cfg.Codecs {
		codec, err := wire.CodecByName(name)
		if err != nil {
			return ops, frames, err
		}
		opsSeries := metrics.Series{Label: name}
		frameSeries := metrics.Series{Label: name}
		for _, pad := range cfg.PayloadBytes {
			rate, err := codecOpsPoint(cfg, codec, pad)
			if err != nil {
				return ops, frames, err
			}
			opsSeries.Add(float64(pad), rate)
			frameSeries.Add(float64(pad), codecFramesPoint(codec, pad, cfg.FrameIters))
		}
		ops = append(ops, opsSeries)
		frames = append(frames, frameSeries)
	}
	return ops, frames, nil
}

// codecOpsPoint measures end-to-end Request+Release throughput with both
// ends pinned to one codec (the negotiation still runs; offering a single
// codec is what pins it, exactly like `-wire-codec json` on a daemon).
func codecOpsPoint(cfg CodecConfig, codec wire.Codec, pad int) (float64, error) {
	const criteria = "punch.rsrc.arch = sun"
	svc, err := newService(cfg.Machines, 0, 1)
	if err != nil {
		return 0, err
	}
	defer svc.Close()
	if err := svc.Precreate(criteria); err != nil {
		return 0, err
	}
	srv, err := core.ServeOpts(svc, "127.0.0.1:0", cfg.Profile, core.ServeConfig{Codecs: []wire.Codec{codec}})
	if err != nil {
		return 0, err
	}
	defer srv.Close()
	cli := wire.NewClientOpts(func() (net.Conn, error) {
		return (netsim.Dialer{Profile: cfg.Profile}).Dial(srv.Addr())
	}, wire.ClientOptions{Codecs: []wire.Codec{codec}})
	defer cli.Close()
	if err := cli.Connect(); err != nil {
		return 0, err
	}
	if got := cli.CodecName(); got != codec.Name() {
		return 0, fmt.Errorf("negotiated %q, want %q", got, codec.Name())
	}

	req := codecRequest(criteria, pad)
	rec := metrics.NewRecorder()
	start := time.Now()
	err = closedLoop(cfg.Clients, cfg.OpsPerClient, rec, func(client, iter int) error {
		reply, err := cli.Call(wire.TypeQuery, req)
		if err != nil {
			return err
		}
		var qr wire.QueryReply
		if err := reply.Decode(&qr); err != nil {
			return err
		}
		if qr.Lease == nil {
			return fmt.Errorf("no lease granted")
		}
		rel := wire.ReleaseRequest{Lease: *qr.Lease, Shadow: qr.Shadow}
		_, err = cli.Call(wire.TypeRelease, rel)
		return err
	})
	elapsed := time.Since(start)
	if err != nil {
		return 0, fmt.Errorf("codec %s pad %d: %w", codec.Name(), pad, err)
	}
	return float64(cfg.Clients*cfg.OpsPerClient) / elapsed.Seconds(), nil
}

// codecFramesPoint measures raw frames/s through one codec: each
// iteration encodes a representative request frame, reads it back, and
// decodes the payload — both ends of one frame's life, no sockets.
func codecFramesPoint(codec wire.Codec, pad, iters int) float64 {
	framer := wire.NewFramer(codec)
	req := codecRequest("punch.rsrc.arch = sun", pad)
	var buf bytes.Buffer
	start := time.Now()
	for i := 0; i < iters; i++ {
		buf.Reset()
		env, _ := wire.NewEnvelope(wire.TypeQuery, uint64(i), req)
		if err := framer.WriteFrame(&buf, env); err != nil {
			return 0
		}
		got, err := framer.ReadFrame(&buf)
		if err != nil {
			return 0
		}
		var out wire.QueryRequest
		if err := got.Decode(&out); err != nil {
			return 0
		}
	}
	return float64(iters) / time.Since(start).Seconds()
}

// codecRequest pads a representative query request to the target payload
// size; the ballast travels in the delegation metadata the service
// ignores.
func codecRequest(criteria string, pad int) wire.QueryRequest {
	req := wire.QueryRequest{Text: criteria}
	if pad > 0 {
		req.Visited = []string{strings.Repeat("x", pad)}
	}
	return req
}
