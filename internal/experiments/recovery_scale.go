package experiments

import (
	"errors"
	"fmt"
	"os"
	"time"

	"actyp/internal/core"
	"actyp/internal/journal"
	"actyp/internal/metrics"
	"actyp/internal/pool"
	"actyp/internal/registry"
)

// Crash recovery at scale: the durability journal turns the in-memory
// white-pages daemon into one that survives a kill, but the paper's
// allocation numbers only hold if (a) replaying a large fleet's journal
// finishes in operational time and (b) journaling the grant path does not
// meaningfully slow allocation. This experiment measures both: cold-boot
// recovery time (replay + registry restore + lease re-adoption) across
// fleet sizes, allocate p99 on the freshly recovered daemon, and the
// allocate p99 overhead of each fsync policy against the no-journal
// baseline.

// RecoveryConfig parameterizes the recovery sweep.
type RecoveryConfig struct {
	Sizes         []int // fleet sizes for the recovery sweep (x axis)
	Leases        int   // live leases journaled before the crash
	Clients       int   // closed-loop allocate clients
	OpsPerClient  int   // allocate iterations per client
	FsyncMachines int   // fixed fleet size for the fsync-policy comparison
	Seed          int64
}

// DefaultRecovery covers the paper-scale fleet: recovery must stay
// operational (seconds, not minutes) at 10k machines.
func DefaultRecovery() RecoveryConfig {
	return RecoveryConfig{
		Sizes:         []int{1000, 5000, 10000},
		Leases:        64,
		Clients:       8,
		OpsPerClient:  40,
		FsyncMachines: 2000,
		Seed:          1,
	}
}

// ReplayBar is the driver-asserted recovery-time bound at the largest
// swept fleet.
const ReplayBar = 10 * time.Second

// FsyncPolicies are the journal configurations the overhead comparison
// sweeps; "none" is the no-journal baseline.
var FsyncPolicies = []string{"none", journal.FsyncOff, journal.FsyncInterval, journal.FsyncAlways}

// RecoveryResult is the sweep's output.
type RecoveryResult struct {
	// Recovery is cold-boot time (ms) vs fleet size: journal replay,
	// registry restore, service construction, and lease re-adoption.
	Recovery metrics.Series
	// Allocate is allocate p99 (ms) on the just-recovered daemon vs fleet
	// size — recovery must hand back a daemon that performs, not just one
	// that answers.
	Allocate metrics.Series
	// Fsync holds one single-point series per fsync policy: allocate p99
	// (ms) at FsyncMachines with the journal on the grant path. The x
	// value is the policy's index in FsyncPolicies.
	Fsync []metrics.Series
	// Restored/Reaped sanity-check the largest recovery point.
	Restored, Reaped int
}

// Check asserts the figure's regression bars: recovery at the largest
// fleet completes inside ReplayBar, every journaled lease was restored,
// and the default fsync policy (interval) costs at most 2x the
// no-journal allocate p99 (with a 2ms floor so microsecond baselines
// don't fail on scheduler noise).
func (r RecoveryResult) Check() error {
	if len(r.Recovery.Points) == 0 {
		return errors.New("recovery: no recovery series to assert")
	}
	last := r.Recovery.Points[len(r.Recovery.Points)-1]
	if limit := float64(ReplayBar.Milliseconds()); last.Y > limit {
		return fmt.Errorf("recovery: cold boot took %.0fms at %.0f machines, bar is %.0fms", last.Y, last.X, limit)
	}
	if r.Restored == 0 {
		return errors.New("recovery: no leases were restored at the largest fleet")
	}
	var none, interval *metrics.Series
	for i := range r.Fsync {
		switch r.Fsync[i].Label {
		case "fsync=none":
			none = &r.Fsync[i]
		case "fsync=" + journal.FsyncInterval:
			interval = &r.Fsync[i]
		}
	}
	if none == nil || interval == nil || len(none.Points) == 0 || len(interval.Points) == 0 {
		return errors.New("recovery: fsync comparison is missing the none or interval series")
	}
	base, got := none.Points[0].Y, interval.Points[0].Y
	allowed := 2 * base
	if floor := base + 2; allowed < floor {
		allowed = floor
	}
	if got > allowed {
		return fmt.Errorf("recovery: fsync=interval allocate p99 %.2fms exceeds %.2fms (2x no-journal %.2fms, +2ms floor)",
			got, allowed, base)
	}
	return nil
}

// RecoveryScale runs the sweep.
func RecoveryScale(cfg RecoveryConfig) (RecoveryResult, error) {
	if len(cfg.Sizes) == 0 {
		cfg = DefaultRecovery()
	}
	res := RecoveryResult{
		Recovery: metrics.Series{Label: "cold boot"},
		Allocate: metrics.Series{Label: "post-recovery allocate p99"},
	}
	for _, size := range cfg.Sizes {
		point, err := recoveryPoint(cfg, size)
		if err != nil {
			return res, fmt.Errorf("recovery at %d machines: %w", size, err)
		}
		res.Recovery.Add(float64(size), float64(point.boot.Milliseconds()))
		res.Allocate.Add(float64(size), ms(point.allocP99))
		res.Restored, res.Reaped = point.restored, point.reaped
	}
	for i, policy := range FsyncPolicies {
		p99, err := fsyncPoint(cfg, policy)
		if err != nil {
			return res, fmt.Errorf("fsync=%s: %w", policy, err)
		}
		s := metrics.Series{Label: "fsync=" + policy}
		s.Add(float64(i), ms(p99))
		res.Fsync = append(res.Fsync, s)
	}
	return res, nil
}

func ms(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }

type recoverySample struct {
	boot     time.Duration
	allocP99 time.Duration
	restored int
	reaped   int
}

// leasePoolInstance is the pool the pre-crash leases belong to. It is
// deliberately NOT the pool the post-recovery allocate workload uses, so
// the workload measures fresh allocation on a recovered daemon rather
// than contention against the re-adopted members.
const leasePoolInstance = "bench,==/recovered#0"

// buildCrashedJournal populates a fleet, journals a monitor-style update
// wave plus cfg.Leases live grants, and crashes the process — the on-disk
// state a dead daemon leaves behind.
func buildCrashedJournal(dir string, cfg RecoveryConfig, size int) error {
	db, err := newDB()
	if err != nil {
		return err
	}
	if err := registry.HomogeneousFleetSpec(size).Populate(db, time.Now()); err != nil {
		return err
	}
	jnl, _, err := journal.Open(journal.Config{Dir: dir, Fsync: journal.FsyncOff})
	if err != nil {
		return err
	}
	source := func(limit, offset int) ([]*registry.Machine, int, error) {
		var all []*registry.Machine
		db.Walk(func(m *registry.Machine) bool { all = append(all, m); return true })
		total := len(all)
		if offset > total {
			offset = total
		}
		all = all[offset:]
		if limit > 0 && len(all) > limit {
			all = all[:limit]
		}
		return all, total, nil
	}
	if err := jnl.Attach(db, source, 0); err != nil {
		return err
	}
	// One monitor wave after the baseline snapshot: the replayed tail is
	// events, not just snapshot pages.
	names := db.Names()
	for i, name := range names {
		if err := db.UpdateDynamic(name, registry.Dynamic{Load: float64(i % 7), LastUpdate: time.Now()}); err != nil {
			return err
		}
	}
	expiry := time.Now().Add(10 * time.Minute)
	for i := 0; i < cfg.Leases && i < len(names); i++ {
		jnl.LeaseGranted(&pool.Lease{
			ID:        fmt.Sprintf("%s:%d:bench", leasePoolInstance, i),
			Machine:   names[i],
			Addr:      names[i],
			AccessKey: "bench",
			Pool:      leasePoolInstance,
			Granted:   time.Now(),
		}, expiry)
	}
	if err := jnl.Flush(); err != nil {
		return err
	}
	jnl.Crash()
	return nil
}

// recoveryPoint measures one fleet size: cold-boot time from the crashed
// journal directory to a recovered service, then allocate p99 on it.
func recoveryPoint(cfg RecoveryConfig, size int) (recoverySample, error) {
	var out recoverySample
	dir, err := os.MkdirTemp("", "actyp-recovery-*")
	if err != nil {
		return out, err
	}
	defer os.RemoveAll(dir)
	if err := buildCrashedJournal(dir, cfg, size); err != nil {
		return out, err
	}

	bootStart := time.Now()
	jnl, st, err := journal.Open(journal.Config{Dir: dir, Fsync: journal.FsyncInterval})
	if err != nil {
		return out, err
	}
	defer jnl.Close()
	db, err := newDB()
	if err != nil {
		return out, err
	}
	if err := st.RestoreDB(db); err != nil {
		return out, err
	}
	svc, err := core.New(core.Options{
		DB: db, Seed: cfg.Seed, LeaseTTL: time.Minute, LeaseLog: jnl, DelegationLog: jnl,
		PoolEngine: PoolEngine(), RefreshMode: RefreshMode(),
	})
	if err != nil {
		return out, err
	}
	defer svc.Close()
	recovered := make([]core.RecoveredLease, 0, len(st.Leases))
	for _, lr := range st.Leases {
		recovered = append(recovered, core.RecoveredLease{Lease: lr.Lease, Expires: lr.Expires, Peer: lr.Peer})
	}
	rep, err := svc.Recover(recovered, core.RecoverOptions{})
	if err != nil {
		return out, err
	}
	out.boot = time.Since(bootStart)
	out.restored, out.reaped = rep.Restored, rep.Reaped
	if rep.Restored != len(st.Leases) {
		return out, fmt.Errorf("restored %d of %d replayed leases (dropped %d)", rep.Restored, len(st.Leases), rep.Dropped)
	}
	if len(st.Machines) != size {
		return out, fmt.Errorf("replay produced %d machines, want %d", len(st.Machines), size)
	}

	if err := jnl.Attach(db, func(limit, offset int) ([]*registry.Machine, int, error) {
		return svc.SelectMachines("", limit, offset)
	}, 0); err != nil {
		return out, err
	}

	rec := metrics.NewRecorder()
	err = closedLoop(cfg.Clients, cfg.OpsPerClient, rec, func(int, int) error {
		g, err := svc.Request("punch.rsrc.arch = sun")
		if err != nil {
			return err
		}
		return svc.Release(g)
	})
	if err != nil {
		return out, err
	}
	out.allocP99 = rec.Percentile(99)
	return out, nil
}

// fsyncPoint measures allocate p99 with the journal's lease hook on the
// grant path under one fsync policy ("none": no journal at all).
func fsyncPoint(cfg RecoveryConfig, policy string) (time.Duration, error) {
	db, err := newDB()
	if err != nil {
		return 0, err
	}
	if err := registry.HomogeneousFleetSpec(cfg.FsyncMachines).Populate(db, time.Now()); err != nil {
		return 0, err
	}
	opts := core.Options{DB: db, Seed: cfg.Seed, PoolEngine: PoolEngine(), RefreshMode: RefreshMode()}
	var jnl *journal.Journal
	if policy != "none" {
		dir, err := os.MkdirTemp("", "actyp-fsync-*")
		if err != nil {
			return 0, err
		}
		defer os.RemoveAll(dir)
		jnl, _, err = journal.Open(journal.Config{Dir: dir, Fsync: policy})
		if err != nil {
			return 0, err
		}
		defer jnl.Close()
		opts.LeaseLog = jnl
	}
	svc, err := core.New(opts)
	if err != nil {
		return 0, err
	}
	defer svc.Close()
	const criteria = "punch.rsrc.arch = sun"
	if err := svc.Precreate(criteria); err != nil {
		return 0, err
	}
	if jnl != nil {
		if err := jnl.Attach(db, func(limit, offset int) ([]*registry.Machine, int, error) {
			return svc.SelectMachines("", limit, offset)
		}, 0); err != nil {
			return 0, err
		}
	}
	rec := metrics.NewRecorder()
	err = closedLoop(cfg.Clients, cfg.OpsPerClient, rec, func(int, int) error {
		g, err := svc.Request(criteria)
		if err != nil {
			return err
		}
		return svc.Release(g)
	})
	if err != nil {
		return 0, err
	}
	return rec.Percentile(99), nil
}
