package experiments

import (
	"testing"

	"actyp/internal/metrics"
	"actyp/internal/netsim"
)

// wanSeries builds a one-point series at x=32.
func wanSeries(label string, y float64) metrics.Series {
	s := metrics.Series{Label: label}
	s.Add(32, y)
	return s
}

// TestWanScaleBar runs a reduced WAN sweep and asserts the regression bar
// the full figure enforces in CI: compressed+delta moves at least 5x
// fewer bytes per op (or completes 3x the ops/s) than the full baseline
// at the largest batch on the bandwidth-modeled WAN profile.
func TestWanScaleBar(t *testing.T) {
	if testing.Short() {
		t.Skip("wan sweep needs wall time")
	}
	cfg := WanConfig{
		Machines:     128,
		Batches:      []int{4, 32},
		Clients:      4,
		OpsPerClient: 6,
		Legs:         DefaultWan().Legs,
		Profiles: []WanProfile{
			{Name: "lan", Profile: netsim.Local()},
			{Name: "wan", Profile: netsim.Profile{Latency: 2e6, Bandwidth: 256 << 10, Seed: 1}},
		},
	}
	res, err := WanScale(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := len(cfg.Legs) * len(cfg.Profiles)
	if len(res.Ops) != want || len(res.Bytes) != want {
		t.Fatalf("want %d series per group, got ops=%d bytes=%d", want, len(res.Ops), len(res.Bytes))
	}
	for _, s := range append(res.Ops, res.Bytes...) {
		if len(s.Points) != len(cfg.Batches) {
			t.Fatalf("series %q has %d points, want %d", s.Label, len(s.Points), len(cfg.Batches))
		}
	}
	if err := res.Check(); err != nil {
		t.Errorf("regression bar: %v", err)
	}
	// The delta and compressed legs must actually shrink the reply, not
	// just tie the baseline, at the largest batch.
	base := res.find(res.Bytes, "wan/binary2 full")
	delta := res.find(res.Bytes, "wan/binary2 delta")
	comp := res.find(res.Bytes, "wan/binary2+flate delta")
	last := len(cfg.Batches) - 1
	if !(comp.Points[last].Y < delta.Points[last].Y && delta.Points[last].Y < base.Points[last].Y) {
		t.Errorf("bytes/op not monotone full > delta > delta+flate: %.0f / %.0f / %.0f",
			base.Points[last].Y, delta.Points[last].Y, comp.Points[last].Y)
	}
}

// TestWanCheckRejectsBadSeries pins the bar itself: a compressed leg that
// neither shrinks bytes 5x nor speeds ops 3x must fail Check.
func TestWanCheckRejectsBadSeries(t *testing.T) {
	bad := WanResult{
		Ops: []metrics.Series{
			wanSeries("wan/binary2 full", 10), wanSeries("wan/binary2+flate delta", 12),
		},
		Bytes: []metrics.Series{
			wanSeries("wan/binary2 full", 10000), wanSeries("wan/binary2+flate delta", 9000),
		},
	}
	if err := bad.Check(); err == nil {
		t.Fatal("Check passed a no-gain result")
	}
	ok := WanResult{
		Ops: []metrics.Series{
			wanSeries("wan/binary2 full", 10), wanSeries("wan/binary2+flate delta", 12),
		},
		Bytes: []metrics.Series{
			wanSeries("wan/binary2 full", 10000), wanSeries("wan/binary2+flate delta", 1000),
		},
	}
	if err := ok.Check(); err != nil {
		t.Fatalf("Check rejected a 10x bytes win: %v", err)
	}
	var empty WanResult
	if err := empty.Check(); err == nil {
		t.Fatal("Check passed an empty result")
	}
}
