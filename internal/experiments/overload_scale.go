package experiments

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"actyp/internal/core"
	"actyp/internal/metrics"
	"actyp/internal/netsim"
	"actyp/internal/schedule"
	"actyp/internal/wire"
)

// Overload survival: the paper's yellow-pages daemon serves two very
// different request classes over the same connections — cheap control
// frames (pings, lease renewals) that keep the fleet's leases alive, and
// bulk queries that each pay a full pool scan. Under a query flood a
// strictly-FIFO dispatch window queues the pings behind seconds of scan
// work, so transient overload turns into mass lease expiry. This
// experiment drives one shared connection with both classes at growing
// offered load and compares FIFO dispatch against the overload-control
// path (priority lanes + deadline-aware shedding): control-plane p99
// should stay within a small multiple of its uncontended value while
// excess bulk work is shed with Busy instead of queued to death.

// OverloadConfig parameterizes the overload sweep. Offered load is swept
// as a multiplier: each load unit adds BulkPerLoad closed-loop bulk
// flooders, while the control-plane population stays fixed.
type OverloadConfig struct {
	Machines       int           // fleet size; with ScanCost this sets the per-query cost
	Loads          []int         // offered-load multipliers (x axis)
	BulkPerLoad    int           // bulk flooders added per load unit
	ControlClients int           // concurrent control-plane pingers (fixed across loads)
	Window         int           // per-connection in-flight window
	QueueCap       int           // per-lane queue bound in lanes mode
	ScanCost       time.Duration // per-entry linear-search cost (serializes the pool)
	Duration       time.Duration // measured wall time per point
	Profile        netsim.Profile
	Weights        schedule.LaneWeights
	Seed           int64
}

// DefaultOverload saturates a 10k-machine fleet: one query costs
// Machines×ScanCost ≈ 20ms of serialized scan work, so a handful of bulk
// flooders already saturates the daemon and every added load unit only
// deepens the queue.
func DefaultOverload() OverloadConfig {
	return OverloadConfig{
		Machines:       10000,
		Loads:          []int{1, 2, 5, 10},
		BulkPerLoad:    6,
		ControlClients: 4,
		Window:         4,
		QueueCap:       16,
		ScanCost:       DefaultScanCost,
		Duration:       1500 * time.Millisecond,
		Profile:        netsim.LAN(),
		Weights:        schedule.DefaultLaneWeights(),
		Seed:           1,
	}
}

// QueryCost is the modelled cost of one bulk query: a full linear scan of
// the fleet on the serialized pool.
func (cfg OverloadConfig) QueryCost() time.Duration {
	return time.Duration(cfg.Machines) * cfg.ScanCost
}

// OverloadResult is the sweep's output: one series per dispatch mode
// ("fifo" is the pre-overload-control contrast, "lanes" the controlled
// path) for control-plane p99, bulk goodput, and client-observed sheds,
// plus the lanes-mode server-side bulk counters per load point.
type OverloadResult struct {
	ControlP99 []metrics.Series // control ping p99 (ms) vs load multiplier
	Goodput    []metrics.Series // completed bulk ops/s vs load multiplier
	Shed       []metrics.Series // client-observed bulk rejects/s vs load multiplier
	BulkCounts []metrics.OverloadCounts
	QueryCost  time.Duration
}

// Check asserts the figure's regression bar: in lanes mode the
// control-plane p99 at the highest offered load stays within 5x of
// max(its 1x value, a floor of one query cost plus scheduling slack) —
// i.e. priority dispatch keeps pings behind at most a worker's residual
// scan, not behind the bulk queue — and the server actually shed bulk
// work with Busy at the highest load (the load was a real overload).
// Only the lanes series is asserted; fifo is the contrast.
func (r OverloadResult) Check() error {
	var lanes *metrics.Series
	for i := range r.ControlP99 {
		if r.ControlP99[i].Label == "lanes" {
			lanes = &r.ControlP99[i]
		}
	}
	if lanes == nil || len(lanes.Points) < 2 {
		return errors.New("overload: no lanes control-p99 series to assert")
	}
	first, last := lanes.Points[0], lanes.Points[len(lanes.Points)-1]
	floor := float64((r.QueryCost + 10*time.Millisecond).Milliseconds())
	base := first.Y
	if base < floor {
		base = floor
	}
	if allowed := 5 * base; last.Y > allowed {
		return fmt.Errorf("overload: lanes control p99 %.1fms at %gx exceeds %.1fms = 5 x max(p99 %.1fms at %gx, floor %.1fms)",
			last.Y, last.X, allowed, first.Y, first.X, floor)
	}
	if n := len(r.BulkCounts); n > 0 {
		if c := r.BulkCounts[n-1]; c.Shed+c.Expired == 0 {
			return fmt.Errorf("overload: lanes mode shed no bulk work at %gx — offered load never exceeded capacity", last.X)
		}
	}
	return nil
}

// OverloadScale runs the sweep: for each dispatch mode and load
// multiplier, a fresh service is hammered through ONE shared connection
// by a fixed control-plane population and load×BulkPerLoad bulk
// flooders, and the control ping p99, bulk goodput, and shed rate are
// measured over a fixed wall-time window.
func OverloadScale(cfg OverloadConfig) (OverloadResult, error) {
	if cfg.Machines <= 0 {
		cfg = DefaultOverload()
	}
	res := OverloadResult{QueryCost: cfg.QueryCost()}
	for _, mode := range []string{"fifo", "lanes"} {
		p99 := metrics.Series{Label: mode}
		good := metrics.Series{Label: mode}
		shed := metrics.Series{Label: mode}
		for _, load := range cfg.Loads {
			sample, err := overloadPoint(cfg, mode, load)
			if err != nil {
				return res, err
			}
			p99.Add(float64(load), float64(sample.p99.Milliseconds()))
			good.Add(float64(load), sample.goodPerSec)
			shed.Add(float64(load), sample.shedPerSec)
			if mode == "lanes" {
				res.BulkCounts = append(res.BulkCounts, sample.bulk)
			}
		}
		res.ControlP99 = append(res.ControlP99, p99)
		res.Goodput = append(res.Goodput, good)
		res.Shed = append(res.Shed, shed)
	}
	return res, nil
}

type overloadSample struct {
	p99        time.Duration
	goodPerSec float64
	shedPerSec float64
	bulk       metrics.OverloadCounts
}

// overloadPoint measures one (mode, load) point. Control pingers and bulk
// flooders share one connection — per-connection lanes are the mechanism
// under test, so the classes must contend for the same dispatch window.
func overloadPoint(cfg OverloadConfig, mode string, load int) (overloadSample, error) {
	const criteria = "punch.rsrc.arch = sun"
	var out overloadSample
	svc, err := newService(cfg.Machines, cfg.ScanCost, cfg.Seed)
	if err != nil {
		return out, err
	}
	defer svc.Close()
	if err := svc.Precreate(criteria); err != nil {
		return out, err
	}

	serveCfg := core.ServeConfig{Window: cfg.Window, Codecs: WireCodecs()}
	var stats *metrics.OverloadStats
	if mode == "lanes" {
		stats = metrics.NewOverloadStats()
		serveCfg.Overload = &wire.OverloadPolicy{
			LeaseWeight: cfg.Weights.Lease,
			BulkWeight:  cfg.Weights.Bulk,
			QueueCap:    cfg.QueueCap,
			Stats:       stats,
		}
	}
	srv, err := core.ServeOpts(svc, "127.0.0.1:0", cfg.Profile, serveCfg)
	if err != nil {
		return out, err
	}
	defer srv.Close()
	cli, err := core.DialOpts(srv.Addr(), cfg.Profile, core.DialConfig{Codecs: WireCodecs(), From: "bench"})
	if err != nil {
		return out, err
	}
	defer cli.Close()

	// Bulk calls carry a deadline of a few query costs: long enough to
	// succeed on a lightly loaded daemon, short enough that deep-queued
	// work expires and exercises the deadline shed.
	bulkTimeout := 4*cfg.QueryCost() + 50*time.Millisecond
	deadline := time.Now().Add(cfg.Duration)
	rec := metrics.NewRecorder()
	var good, shedN atomic.Int64
	var wg sync.WaitGroup

	for c := 0; c < cfg.ControlClients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for time.Now().Before(deadline) {
				start := time.Now()
				ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
				err := cli.PingContext(ctx)
				cancel()
				if err != nil {
					return // keep the samples gathered so far; fifo mode may starve pings entirely
				}
				rec.Record(time.Since(start))
				time.Sleep(5 * time.Millisecond)
			}
		}()
	}
	for f := 0; f < load*cfg.BulkPerLoad; f++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for time.Now().Before(deadline) {
				ctx, cancel := context.WithTimeout(context.Background(), bulkTimeout)
				g, err := cli.RequestContext(ctx, "", criteria)
				cancel()
				if err == nil {
					good.Add(1)
					_ = cli.Release(g)
					continue
				}
				shedN.Add(1)
				wait := 2 * time.Millisecond
				var busy *wire.BusyError
				if errors.As(err, &busy) && busy.RetryAfter > 0 && busy.RetryAfter < 50*time.Millisecond {
					wait = busy.RetryAfter
				}
				time.Sleep(wait)
			}
		}()
	}
	wg.Wait()

	secs := cfg.Duration.Seconds()
	out.p99 = rec.Percentile(99)
	out.goodPerSec = float64(good.Load()) / secs
	out.shedPerSec = float64(shedN.Load()) / secs
	if stats != nil {
		out.bulk = stats.Snapshot()[metrics.ClassBulk]
	}
	if rec.Count() == 0 {
		return out, fmt.Errorf("overload: %s mode at %dx recorded no control pings", mode, load)
	}
	return out, nil
}
