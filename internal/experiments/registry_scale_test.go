package experiments

import (
	"testing"

	"actyp/internal/registry"
)

// TestRegistryScaleShape runs the backend sweep at reduced scale and
// asserts the result the tentpole exists for: the sharded engine is faster
// than the locked oracle at every measured fleet size.
func TestRegistryScaleShape(t *testing.T) {
	cfg := RegistryScaleConfig{
		Sizes:        []int{400, 1600},
		Backends:     []string{registry.BackendLocked, registry.BackendSharded},
		Clients:      4,
		OpsPerClient: 8,
		TakeLimit:    4,
		Stripes:      16,
	}
	series, err := RegistryScale(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 2 {
		t.Fatalf("series = %d, want 2", len(series))
	}
	locked, sharded := series[0], series[1]
	if locked.Label != registry.BackendLocked || sharded.Label != registry.BackendSharded {
		t.Fatalf("labels = %q, %q", locked.Label, sharded.Label)
	}
	for i, p := range locked.Points {
		if i >= len(sharded.Points) {
			t.Fatalf("sharded series short: %v vs %v", locked.Points, sharded.Points)
		}
		if sp := sharded.Points[i]; sp.Y >= p.Y {
			t.Errorf("at %v machines sharded (%.6fs) not faster than locked (%.6fs)", p.X, sp.Y, p.Y)
		}
	}
}

func TestUseRegistryRejectsUnknown(t *testing.T) {
	if err := UseRegistry("no-such-engine", 0); err == nil {
		t.Fatal("unknown backend accepted")
	}
	// Empty kind keeps the default and must succeed.
	if err := UseRegistry("", 0); err != nil {
		t.Fatal(err)
	}
}
