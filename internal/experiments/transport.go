package experiments

import (
	"fmt"
	"time"

	"actyp/internal/core"
	"actyp/internal/metrics"
	"actyp/internal/netsim"
)

// TransportConfig parameterizes the multiplexed-transport experiment: one
// TCP connection between a desktop and the service, shared by a growing
// number of concurrent callers, swept against the server's per-connection
// in-flight window. The serial baseline (window=1 with one caller) is the
// pre-multiplexing behaviour: one frame dispatched at a time, each op
// paying the full round trip before the next departs. Multiplexing lets
// the calls overlap their round trips on the shared connection, so
// single-connection throughput climbs with the number of callers instead
// of being pinned at 1/RTT.
type TransportConfig struct {
	Machines     int            // fleet size behind the service
	Windows      []int          // per-connection in-flight windows to sweep (1 = serial dispatch)
	Clients      []int          // concurrent callers sharing ONE connection (x axis)
	OpsPerClient int            // measured Request+Release cycles per caller per point
	Profile      netsim.Profile // injected network; the LAN default makes RTT visible
}

// DefaultTransport sweeps a 10k-machine fleet over LAN latency.
func DefaultTransport() TransportConfig {
	return TransportConfig{
		Machines:     10000,
		Windows:      []int{1, 8, 32},
		Clients:      []int{1, 2, 4, 8, 16, 32},
		OpsPerClient: 50,
		Profile:      netsim.LAN(),
	}
}

// TransportScale runs the sweep and returns one series per window:
// single-connection throughput (ops/s) against concurrent callers.
func TransportScale(cfg TransportConfig) ([]metrics.Series, error) {
	if cfg.Machines <= 0 {
		cfg.Machines = 10000
	}
	if cfg.OpsPerClient <= 0 {
		cfg.OpsPerClient = 50
	}
	const criteria = "punch.rsrc.arch = sun"
	var out []metrics.Series
	for _, window := range cfg.Windows {
		s := metrics.Series{Label: fmt.Sprintf("window=%d", window)}
		for _, clients := range cfg.Clients {
			svc, err := newService(cfg.Machines, 0, 1)
			if err != nil {
				return out, err
			}
			if err := svc.Precreate(criteria); err != nil {
				svc.Close()
				return out, err
			}
			win := window
			if win == 0 {
				win = -1 // explicit serial; ServeConfig treats 0 as default
			}
			srv, err := core.ServeOpts(svc, "127.0.0.1:0", cfg.Profile, core.ServeConfig{Window: win, Codecs: WireCodecs()})
			if err != nil {
				svc.Close()
				return out, err
			}
			cli, err := core.DialOpts(srv.Addr(), cfg.Profile, core.DialConfig{Codecs: WireCodecs()})
			if err != nil {
				srv.Close()
				svc.Close()
				return out, err
			}
			rec := metrics.NewRecorder()
			start := time.Now()
			err = closedLoop(clients, cfg.OpsPerClient, rec, func(client, iter int) error {
				g, err := cli.Request(criteria)
				if err != nil {
					return fmt.Errorf("window %d clients %d: %w", window, clients, err)
				}
				return cli.Release(g)
			})
			elapsed := time.Since(start)
			cli.Close()
			srv.Close()
			svc.Close()
			if err != nil {
				return out, err
			}
			ops := float64(clients * cfg.OpsPerClient)
			s.Add(float64(clients), ops/elapsed.Seconds())
		}
		out = append(out, s)
	}
	return out, nil
}
