package experiments

import (
	"testing"
	"time"

	"actyp/internal/core"
)

// TestRefreshScaleSmoke runs a miniature sweep through the full driver:
// both modes, two sizes, real monitor sweeps underneath.
func TestRefreshScaleSmoke(t *testing.T) {
	cfg := RefreshScaleConfig{
		Sizes:        []int{200, 400},
		Modes:        []string{core.RefreshPoll, core.RefreshEvents},
		Clients:      4,
		OpsPerClient: 5,
		PollInterval: time.Millisecond,
	}
	series, err := RefreshScale(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 2 {
		t.Fatalf("got %d series, want 2", len(series))
	}
	for _, s := range series {
		if len(s.Points) != len(cfg.Sizes) {
			t.Errorf("series %s has %d points, want %d", s.Label, len(s.Points), len(cfg.Sizes))
		}
		for _, p := range s.Points {
			if p.Y <= 0 {
				t.Errorf("series %s point %v has non-positive p99", s.Label, p)
			}
		}
	}
}

func TestUseRefreshModeValidates(t *testing.T) {
	if err := UseRefreshMode("bogus"); err == nil {
		t.Fatal("bogus refresh mode accepted")
	}
	if err := UseRefreshMode(core.RefreshEvents); err != nil {
		t.Fatal(err)
	}
	if got := RefreshMode(); got != core.RefreshEvents {
		t.Fatalf("RefreshMode() = %q", got)
	}
	t.Cleanup(func() {
		if err := UseRefreshMode(""); err != nil {
			t.Fatal(err)
		}
	})
}
