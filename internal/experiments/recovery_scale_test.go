package experiments

import (
	"testing"

	"actyp/internal/journal"
	"actyp/internal/metrics"
)

// TestRecoveryScaleBar runs a reduced recovery sweep and asserts the
// regression bars the full figure enforces in CI: cold boot inside the
// replay bar, every journaled lease restored, and the default fsync
// policy within 2x of the no-journal allocate p99.
func TestRecoveryScaleBar(t *testing.T) {
	if testing.Short() {
		t.Skip("recovery sweep needs wall time")
	}
	cfg := RecoveryConfig{
		Sizes:         []int{200, 800},
		Leases:        8,
		Clients:       4,
		OpsPerClient:  10,
		FsyncMachines: 200,
		Seed:          1,
	}
	res, err := RecoveryScale(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Recovery.Points) != len(cfg.Sizes) || len(res.Allocate.Points) != len(cfg.Sizes) {
		t.Fatalf("recovery=%d allocate=%d points, want %d each",
			len(res.Recovery.Points), len(res.Allocate.Points), len(cfg.Sizes))
	}
	if len(res.Fsync) != len(FsyncPolicies) {
		t.Fatalf("fsync series = %d, want %d", len(res.Fsync), len(FsyncPolicies))
	}
	if res.Restored != cfg.Leases {
		t.Errorf("restored %d leases, want %d", res.Restored, cfg.Leases)
	}
	if err := res.Check(); err != nil {
		t.Errorf("regression bar: %v", err)
	}
}

// TestRecoveryCheckRejectsBadResults pins the bar itself.
func TestRecoveryCheckRejectsBadResults(t *testing.T) {
	mk := func(bootMS, noneMS, intervalMS float64, restored int) RecoveryResult {
		var r RecoveryResult
		r.Recovery.Label = "cold boot"
		r.Recovery.Add(10000, bootMS)
		r.Restored = restored
		none := metrics.Series{Label: "fsync=none"}
		none.Add(0, noneMS)
		ivl := metrics.Series{Label: "fsync=" + journal.FsyncInterval}
		ivl.Add(2, intervalMS)
		r.Fsync = []metrics.Series{none, ivl}
		return r
	}
	if err := mk(500, 10, 15, 8).Check(); err != nil {
		t.Errorf("Check rejected a healthy result: %v", err)
	}
	if err := mk(60000, 10, 15, 8).Check(); err == nil {
		t.Error("Check passed a 60s cold boot")
	}
	if err := mk(500, 10, 50, 8).Check(); err == nil {
		t.Error("Check passed a 5x fsync overhead")
	}
	if err := mk(500, 10, 15, 0).Check(); err == nil {
		t.Error("Check passed zero restored leases")
	}
	// The 2ms floor: a microsecond-scale baseline must not fail on noise.
	if err := mk(500, 0.05, 1.5, 8).Check(); err != nil {
		t.Errorf("Check rejected a sub-floor delta: %v", err)
	}
	var empty RecoveryResult
	if err := empty.Check(); err == nil {
		t.Error("Check passed an empty result")
	}
}
