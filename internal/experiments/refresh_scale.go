package experiments

import (
	"fmt"
	"sync"
	"time"

	"actyp/internal/core"
	"actyp/internal/metrics"
	"actyp/internal/monitor"
	"actyp/internal/registry"
)

// RefreshScaleConfig parameterizes the freshness-mode scale experiment:
// allocate-latency p99 on one fleet-wide pool while the resource monitor
// sweeps the whole white pages as fast as it can, per refresh mode. Poll
// mode pays a stop-the-world full cache rebuild per refresh tick — a
// window that grows with the fleet — while events mode folds the same
// sweeps through the registry change stream in bounded increments, so the
// tail latency gap between the two is the figure of merit.
type RefreshScaleConfig struct {
	Sizes        []int    // fleet sizes to sweep
	Modes        []string // refresh modes to compare
	Clients      int      // concurrent closed-loop clients
	OpsPerClient int      // measured requests per client per point
	// PollInterval is poll mode's refresh cadence. It is set small so the
	// rebuilds are as continuous as the event stream they stand against;
	// at large fleets one rebuild outlasts the interval anyway, making
	// the refresher effectively back-to-back.
	PollInterval time.Duration
}

// DefaultRefreshScale sweeps 1k/10k/100k machines in both modes under
// 8-way contention.
func DefaultRefreshScale() RefreshScaleConfig {
	return RefreshScaleConfig{
		Sizes:        []int{1000, 10000, 100000},
		Modes:        []string{core.RefreshPoll, core.RefreshEvents},
		Clients:      8,
		OpsPerClient: 150,
		PollInterval: 25 * time.Millisecond,
	}
}

// RefreshScale runs the sweep and returns one series per mode: p99
// seconds per Request+Release cycle at each fleet size, measured under
// sustained monitor sweeps.
func RefreshScale(cfg RefreshScaleConfig) ([]metrics.Series, error) {
	if cfg.Clients <= 0 {
		cfg.Clients = 8
	}
	if cfg.OpsPerClient <= 0 {
		cfg.OpsPerClient = 150
	}
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = 25 * time.Millisecond
	}
	var out []metrics.Series
	for _, mode := range cfg.Modes {
		s := metrics.Series{Label: mode}
		for _, size := range cfg.Sizes {
			p99, err := refreshScalePoint(mode, size, cfg)
			if err != nil {
				return out, err
			}
			s.Add(float64(size), p99.Seconds())
		}
		out = append(out, s)
	}
	return out, nil
}

func refreshScalePoint(mode string, size int, cfg RefreshScaleConfig) (time.Duration, error) {
	const criteria = "punch.rsrc.arch = sun"
	db, err := newDB()
	if err != nil {
		return 0, err
	}
	if err := registry.HomogeneousFleetSpec(size).Populate(db, time.Now()); err != nil {
		return 0, err
	}
	opts := core.Options{DB: db, PoolEngine: PoolEngine(), RefreshMode: mode}
	if mode == core.RefreshPoll {
		opts.RefreshInterval = cfg.PollInterval
	}
	svc, err := core.New(opts)
	if err != nil {
		return 0, err
	}
	defer svc.Close()
	// Warm the single fleet-wide pool so the sweep measures steady-state
	// allocation latency, not first-touch creation.
	if err := svc.Precreate(criteria); err != nil {
		return 0, err
	}

	// The monitor sweeps back to back: every pass samples the whole fleet
	// and lands it through the batched update path, which is the sustained
	// churn both freshness modes must absorb.
	mon := monitor.New(monitor.Config{DB: db, Sampler: monitor.NewSyntheticSampler(1)})
	stop := make(chan struct{})
	var sweeps sync.WaitGroup
	sweeps.Add(1)
	go func() {
		defer sweeps.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			mon.Sweep()
		}
	}()

	rec := metrics.NewRecorder()
	err = closedLoop(cfg.Clients, cfg.OpsPerClient, rec, func(client, iter int) error {
		g, err := svc.Request(criteria)
		if err != nil {
			return fmt.Errorf("mode %s size %d: %w", mode, size, err)
		}
		return svc.Release(g)
	})
	close(stop)
	sweeps.Wait()
	if err != nil {
		return 0, err
	}
	return rec.Percentile(99), nil
}
