package experiments

import (
	"errors"
	"fmt"
	"time"

	"actyp/internal/core"
	"actyp/internal/metrics"
	"actyp/internal/netsim"
	"actyp/internal/registry"
	"actyp/internal/wire"
)

// WAN byte efficiency: the paper's headline deployment separates pipeline
// stages by a transatlantic link, where a reply pays for its size twice —
// serialization into a bounded-bandwidth pipe, then propagation. This
// experiment drives the record-batch endpoint ("select") across payload
// sizes, network profiles, and wire encodings: the full per-record
// encoding (the pre-delta baseline), the delta/dictionary batch, and the
// delta batch under negotiated flate compression. On the bandwidth-aware
// WAN profile the byte savings become a wall-clock win; the bytes-per-op
// series (from metrics.WireStats on the client connection) shows the
// reduction directly, independent of the host's speed.

// WanLeg is one wire-encoding leg of the sweep.
type WanLeg struct {
	Name string // series label ("binary2 full", "binary2 delta", ...)
	Spec string // codec spec for wire.CodecByName ("binary2", "binary2+flate")
	Full bool   // pin the full per-record oracle encoding
}

// WanProfile is one network leg of the sweep.
type WanProfile struct {
	Name    string
	Profile netsim.Profile
}

// WanConfig parameterizes the WAN wire sweep.
type WanConfig struct {
	Machines     int   // fleet size (bounds the largest batch)
	Batches      []int // records per select reply (x axis, via SelectRequest.Limit)
	Clients      int   // concurrent callers sharing ONE connection
	OpsPerClient int   // measured selects per caller per point
	Legs         []WanLeg
	Profiles     []WanProfile
}

// DefaultWan sweeps the three encodings over LAN (no bandwidth term) and
// the bandwidth-modeled WAN. The middle batch sizes put the baseline
// reply in the 8KiB class the regression bar targets.
func DefaultWan() WanConfig {
	return WanConfig{
		Machines:     256,
		Batches:      []int{4, 16, 64},
		Clients:      8,
		OpsPerClient: 25,
		Legs: []WanLeg{
			{Name: "binary2 full", Spec: "binary2", Full: true},
			{Name: "binary2 delta", Spec: "binary2"},
			{Name: "binary2+flate delta", Spec: "binary2+flate"},
		},
		Profiles: []WanProfile{
			{Name: "lan", Profile: netsim.LAN()},
			{Name: "wan", Profile: netsim.WAN()},
		},
	}
}

// WanResult is the sweep's output: ops/s and wire bytes per op, one
// series per profile/leg pair, records-per-reply on the x axis.
type WanResult struct {
	Ops   []metrics.Series
	Bytes []metrics.Series
}

// wanCheckBytes is the reply-size class the regression bar is asserted
// at: the first WAN point whose baseline costs at least this many wire
// bytes per op (falling back to the largest batch).
const wanCheckBytes = 8 << 10

// Check asserts the figure's regression bar: at the 8KiB-class WAN
// point, the compressed+delta leg must move at least 5x fewer bytes per
// op than the full baseline, or complete at least 3x the ops/s. Bytes
// are the primary criterion — they are host-speed independent.
func (r WanResult) Check() error {
	baseB := r.find(r.Bytes, "wan/binary2 full")
	compB := r.find(r.Bytes, "wan/binary2+flate delta")
	baseOps := r.find(r.Ops, "wan/binary2 full")
	compOps := r.find(r.Ops, "wan/binary2+flate delta")
	if baseB == nil || compB == nil || baseOps == nil || compOps == nil {
		return errors.New("wan: missing a wan-profile series to assert")
	}
	idx := len(baseB.Points) - 1
	for i, p := range baseB.Points {
		if p.Y >= wanCheckBytes {
			idx = i
			break
		}
	}
	if idx >= len(compB.Points) || idx >= len(baseOps.Points) || idx >= len(compOps.Points) {
		return errors.New("wan: series lengths diverge")
	}
	var bytesGain, opsGain float64
	if compB.Points[idx].Y > 0 {
		bytesGain = baseB.Points[idx].Y / compB.Points[idx].Y
	}
	if baseOps.Points[idx].Y > 0 {
		opsGain = compOps.Points[idx].Y / baseOps.Points[idx].Y
	}
	if bytesGain < 5 && opsGain < 3 {
		return fmt.Errorf("wan: at %g records/reply (baseline %.0f B/op) compressed+delta gained only %.2fx bytes and %.2fx ops/s (need >=5x bytes or >=3x ops)",
			baseB.Points[idx].X, baseB.Points[idx].Y, bytesGain, opsGain)
	}
	return nil
}

func (WanResult) find(series []metrics.Series, label string) *metrics.Series {
	for i := range series {
		if series[i].Label == label {
			return &series[i]
		}
	}
	return nil
}

// WanScale runs the sweep: for each profile, leg, and batch size, a fresh
// service over a DefaultFleetSpec fleet answers closed-loop Select calls
// through one shared connection pinned to the leg's codec, and the
// client-side WireStats turn the same run into a bytes-per-op series.
func WanScale(cfg WanConfig) (WanResult, error) {
	var res WanResult
	if cfg.Machines <= 0 {
		cfg = DefaultWan()
	}
	for _, prof := range cfg.Profiles {
		for _, leg := range cfg.Legs {
			ops := metrics.Series{Label: prof.Name + "/" + leg.Name}
			bytesPer := metrics.Series{Label: prof.Name + "/" + leg.Name}
			for _, batch := range cfg.Batches {
				rate, per, err := wanPoint(cfg, prof.Profile, leg, batch)
				if err != nil {
					return res, fmt.Errorf("wan: %s/%s batch %d: %w", prof.Name, leg.Name, batch, err)
				}
				ops.Add(float64(batch), rate)
				bytesPer.Add(float64(batch), per)
			}
			res.Ops = append(res.Ops, ops)
			res.Bytes = append(res.Bytes, bytesPer)
		}
	}
	return res, nil
}

// wanPoint measures one (profile, leg, batch) point and returns (ops/s,
// wire bytes per op summed over both directions and all codecs — the
// JSON hello handshake included, identically for every leg).
func wanPoint(cfg WanConfig, profile netsim.Profile, leg WanLeg, batch int) (float64, float64, error) {
	codec, err := wire.CodecByName(leg.Spec)
	if err != nil {
		return 0, 0, err
	}
	// A heterogeneous fleet (DefaultFleetSpec cycles archs, domains, and
	// licenses), so the delta codec is measured against realistic record
	// divergence rather than an all-identical fleet.
	db, err := newDB()
	if err != nil {
		return 0, 0, err
	}
	if err := registry.DefaultFleetSpec(cfg.Machines).Populate(db, time.Now()); err != nil {
		return 0, 0, err
	}
	svc, err := core.New(core.Options{DB: db, Seed: 1, PoolEngine: PoolEngine(), RefreshMode: RefreshMode()})
	if err != nil {
		return 0, 0, err
	}
	defer svc.Close()
	srv, err := core.ServeOpts(svc, "127.0.0.1:0", profile, core.ServeConfig{Codecs: []wire.Codec{codec}})
	if err != nil {
		return 0, 0, err
	}
	defer srv.Close()
	stats := &metrics.WireStats{}
	cli, err := core.DialOpts(srv.Addr(), profile, core.DialConfig{Codecs: []wire.Codec{codec}, Stats: stats})
	if err != nil {
		return 0, 0, err
	}
	defer cli.Close()
	if got := cli.CodecName(); got != codec.Name() {
		return 0, 0, fmt.Errorf("negotiated %q, want %q", got, codec.Name())
	}

	rec := metrics.NewRecorder()
	start := time.Now()
	err = closedLoop(cfg.Clients, cfg.OpsPerClient, rec, func(client, iter int) error {
		ms, _, err := cli.Select("", batch, leg.Full)
		if err != nil {
			return err
		}
		if want := min(batch, cfg.Machines); len(ms) != want {
			return fmt.Errorf("select returned %d records, want %d", len(ms), want)
		}
		return nil
	})
	elapsed := time.Since(start)
	if err != nil {
		return 0, 0, err
	}
	ops := cfg.Clients * cfg.OpsPerClient
	var wireBytes int64
	for _, wc := range stats.Snapshot() {
		wireBytes += wc.BytesIn + wc.BytesOut
	}
	return float64(ops) / elapsed.Seconds(), float64(wireBytes) / float64(ops), nil
}
