// Package stage distributes the pool-manager stage of the pipeline across
// machines: a Server exposes one poolmgr.Manager over the wire protocol,
// and the Remote stub satisfies both the query managers' ResourceManager
// contract and the directory service's Forwarder contract. Query managers
// can therefore route fragments to pool managers in other processes, and
// pool managers can delegate queries to remote peers with the visited list
// and TTL travelling inside the wire message — the fully distributed
// deployment Section 6 describes ("All stages in the resource management
// pipeline can be independently distributed and replicated across
// machines. Queries propagate from one stage to the next via TCP or
// UDP.").
package stage

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"

	"actyp/internal/metrics"
	"actyp/internal/netsim"
	"actyp/internal/pool"
	"actyp/internal/poolmgr"
	"actyp/internal/query"
	"actyp/internal/wire"
)

// Message types private to the pool-manager stage endpoints.
const (
	typeResolve = "pm-resolve"
	typeRelease = "pm-release"
	typeName    = "pm-name"
)

type resolveRequest struct {
	Query   string   `json:"query"` // basic query, textual form
	TTL     int      `json:"ttl"`
	Visited []string `json:"visited,omitempty"`
}

type resolveReply struct {
	Lease *pool.Lease `json:"lease"`
}

type releaseRequest struct {
	Lease pool.Lease `json:"lease"`
}

type nameReply struct {
	Name string `json:"name"`
}

// The stage payloads implement wire.ExtPayload, so on binary connections
// they travel as hand-rolled field codecs instead of JSON-inside-binary.
// Stage endpoints only ever talk to like-versioned stage processes, which
// is what makes a private extension tag safe here; JSON connections still
// marshal the structs as before.

func (m resolveRequest) AppendExt(dst []byte) []byte {
	dst = wire.AppendString(dst, m.Query)
	dst = wire.AppendVarint(dst, int64(m.TTL))
	return wire.AppendStrings(dst, m.Visited)
}

func (m *resolveRequest) DecodeExt(cur *wire.Cursor) error {
	m.Query = cur.String()
	m.TTL = int(cur.Varint())
	m.Visited = cur.Strings()
	return cur.Err()
}

func (m resolveReply) AppendExt(dst []byte) []byte {
	if m.Lease == nil {
		return append(dst, 0)
	}
	dst = append(dst, 1)
	return wire.AppendLease(dst, *m.Lease)
}

func (m *resolveReply) DecodeExt(cur *wire.Cursor) error {
	if cur.Byte() == 0 {
		m.Lease = nil
		return cur.Err()
	}
	l := cur.Lease()
	m.Lease = &l
	return cur.Err()
}

func (m releaseRequest) AppendExt(dst []byte) []byte {
	return wire.AppendLease(dst, m.Lease)
}

func (m *releaseRequest) DecodeExt(cur *wire.Cursor) error {
	m.Lease = cur.Lease()
	return cur.Err()
}

func (m nameReply) AppendExt(dst []byte) []byte {
	return wire.AppendString(dst, m.Name)
}

func (m *nameReply) DecodeExt(cur *wire.Cursor) error {
	m.Name = cur.String()
	return cur.Err()
}

// ServerOptions tunes a stage server's per-connection transport.
type ServerOptions struct {
	// Window is the per-connection in-flight window (0 means
	// wire.DefaultWindow; values below 0 serialize). Stage fan-in from
	// many query managers can be tuned per deployment with it.
	Window int
	// Codecs is the wire-codec negotiation preference (nil means
	// wire.DefaultCodecs).
	Codecs []wire.Codec
	// Stats, when set, accounts every frame served per codec.
	Stats *metrics.WireStats
}

// Server exposes a pool manager over TCP.
type Server struct {
	pm   *poolmgr.Manager
	ln   net.Listener
	opts ServerOptions

	mu     sync.Mutex
	closed bool
	wg     sync.WaitGroup
}

// Serve starts a stage server for pm on addr with the given network
// profile and the default transport configuration.
func Serve(pm *poolmgr.Manager, addr string, profile netsim.Profile) (*Server, error) {
	return ServeOpts(pm, addr, profile, ServerOptions{})
}

// ServeOpts is Serve with an explicit transport configuration.
func ServeOpts(pm *poolmgr.Manager, addr string, profile netsim.Profile, opts ServerOptions) (*Server, error) {
	if pm == nil {
		return nil, fmt.Errorf("stage: server needs a pool manager")
	}
	if opts.Window == 0 {
		opts.Window = wire.DefaultWindow
	}
	ln, err := netsim.Listen(addr, profile)
	if err != nil {
		return nil, err
	}
	s := &Server{pm: pm, ln: ln, opts: opts}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listening address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server and waits for handlers.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	_ = s.ln.Close()
	s.wg.Wait()
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.wg.Add(1)
		go s.handle(conn)
	}
}

func (s *Server) handle(conn net.Conn) {
	defer s.wg.Done()
	defer conn.Close()
	// The pool manager is concurrency-safe, so one connection's requests
	// dispatch through the multiplexer and overlap; a delegated Resolve
	// that fans out across peers no longer blocks the releases behind it.
	wire.ServeConnOpts(conn, wire.ServeOptions{Window: s.opts.Window, Codecs: s.opts.Codecs, Stats: s.opts.Stats}, s.dispatch)
}

func (s *Server) dispatch(env *wire.Envelope) *wire.Envelope {
	fail := func(err error) *wire.Envelope { return wire.ErrorEnvelope(env.ID, err) }
	switch env.Type {
	case wire.TypePing:
		return &wire.Envelope{Type: wire.TypePing, ID: env.ID}
	case typeName:
		// Payloads pass as pointers: only the pointer types carry the full
		// wire.ExtPayload method set, which is what routes them through the
		// binary extension tag.
		reply, err := wire.NewEnvelope(typeName, env.ID, &nameReply{Name: s.pm.Name()})
		if err != nil {
			return fail(err)
		}
		return reply
	case typeResolve:
		var req resolveRequest
		if err := env.Decode(&req); err != nil {
			return fail(err)
		}
		q, err := query.ParseBasic(req.Query)
		if err != nil {
			return fail(err)
		}
		lease, err := s.pm.Forward(q, req.TTL, req.Visited)
		if err != nil {
			return fail(err)
		}
		reply, err := wire.NewEnvelope(typeResolve, env.ID, &resolveReply{Lease: lease})
		if err != nil {
			return fail(err)
		}
		return reply
	case typeRelease:
		var req releaseRequest
		if err := env.Decode(&req); err != nil {
			return fail(err)
		}
		if err := s.pm.Release(&req.Lease); err != nil {
			return fail(err)
		}
		reply, err := wire.NewEnvelope(typeRelease, env.ID, struct{}{})
		if err != nil {
			return fail(err)
		}
		return reply
	default:
		return fail(fmt.Errorf("stage: unknown message %q", env.Type))
	}
}

// Remote is the client stub for a remote pool manager. It satisfies
// querymgr.ResourceManager (Name/Resolve/Release) and directory.Forwarder
// (Name/Forward), so it slots into both stages' wiring. Calls multiplex
// over one connection: concurrent fragments routed to the same remote
// manager keep their requests in flight together, and a dropped connection
// is redialed on the next call.
type Remote struct {
	addr string
	c    *wire.Client
	name string
	ttl  int
}

// DialRemote connects a stub and fetches the remote manager's name. ttl is
// attached to Resolve calls (<=0 uses poolmgr.DefaultTTL).
func DialRemote(addr string, profile netsim.Profile, ttl int) (*Remote, error) {
	if ttl <= 0 {
		ttl = poolmgr.DefaultTTL
	}
	c := wire.NewClient(func() (net.Conn, error) {
		return (netsim.Dialer{Profile: profile}).Dial(addr)
	}, 0)
	r := &Remote{addr: addr, c: c, ttl: ttl}
	reply, err := r.call(typeName, nil)
	if err != nil {
		_ = c.Close()
		return nil, fmt.Errorf("stage: dial %s: %w", addr, err)
	}
	var nr nameReply
	if err := reply.Decode(&nr); err != nil {
		_ = c.Close()
		return nil, err
	}
	r.name = nr.Name
	return r, nil
}

// Name implements ResourceManager and Forwarder.
func (r *Remote) Name() string { return r.name }

// Close drops the connection.
func (r *Remote) Close() error { return r.c.Close() }

// Resolve implements querymgr.ResourceManager.
func (r *Remote) Resolve(q *query.Query) (*pool.Lease, error) {
	return r.Forward(q, r.ttl, nil)
}

// Forward implements directory.Forwarder: the TTL and visited list travel
// in the wire message.
func (r *Remote) Forward(q *query.Query, ttl int, visited []string) (*pool.Lease, error) {
	reply, err := r.call(typeResolve, &resolveRequest{
		Query: q.String(), TTL: ttl, Visited: visited,
	})
	if err != nil {
		return nil, err
	}
	var rr resolveReply
	if err := reply.Decode(&rr); err != nil {
		return nil, err
	}
	if rr.Lease == nil {
		return nil, fmt.Errorf("stage: remote %s returned no lease", r.name)
	}
	return rr.Lease, nil
}

// ForwardContext implements directory.ContextForwarder for the fan-out
// delegation path. Cancellation cannot recall a request already on the
// wire, so a cancelled branch keeps a goroutine waiting on the in-flight
// call: if the peer grants a lease after the cancel landed, that goroutine
// releases it — a losing branch never orphans capacity on a remote peer.
func (r *Remote) ForwardContext(ctx context.Context, q *query.Query, ttl int, visited []string) (*pool.Lease, error) {
	if ctx.Done() == nil {
		return r.Forward(q, ttl, visited)
	}
	type res struct {
		lease *pool.Lease
		err   error
	}
	ch := make(chan res, 1)
	go func() {
		lease, err := r.Forward(q, ttl, visited)
		ch <- res{lease, err}
	}()
	select {
	case out := <-ch:
		return out.lease, out.err
	case <-ctx.Done():
		go func() {
			if out := <-ch; out.err == nil && out.lease != nil {
				_ = r.Release(out.lease)
			}
		}()
		return nil, ctx.Err()
	}
}

// Release implements querymgr.ResourceManager and directory.LeaseReleaser.
func (r *Remote) Release(lease *pool.Lease) error {
	if lease == nil {
		return fmt.Errorf("stage: nil lease")
	}
	_, err := r.call(typeRelease, &releaseRequest{Lease: *lease})
	return err
}

// call round-trips one request, translating server-reported failures into
// the historical "stage: <name>: ..." form.
func (r *Remote) call(typ string, payload any) (*wire.Envelope, error) {
	reply, err := r.c.Call(typ, payload)
	if err != nil {
		var remote *wire.RemoteError
		if errors.As(err, &remote) {
			return nil, fmt.Errorf("stage: %s: %s", r.name, remote.Message)
		}
		return nil, err
	}
	return reply, nil
}
