// Package stage distributes the pool-manager stage of the pipeline across
// machines: a Server exposes one poolmgr.Manager over the wire protocol,
// and the Remote stub satisfies both the query managers' ResourceManager
// contract and the directory service's Forwarder contract. Query managers
// can therefore route fragments to pool managers in other processes, and
// pool managers can delegate queries to remote peers with the visited list
// and TTL travelling inside the wire message — the fully distributed
// deployment Section 6 describes ("All stages in the resource management
// pipeline can be independently distributed and replicated across
// machines. Queries propagate from one stage to the next via TCP or
// UDP.").
package stage

import (
	"fmt"
	"net"
	"sync"

	"actyp/internal/netsim"
	"actyp/internal/pool"
	"actyp/internal/poolmgr"
	"actyp/internal/query"
	"actyp/internal/wire"
)

// Message types private to the pool-manager stage endpoints.
const (
	typeResolve = "pm-resolve"
	typeRelease = "pm-release"
	typeName    = "pm-name"
)

type resolveRequest struct {
	Query   string   `json:"query"` // basic query, textual form
	TTL     int      `json:"ttl"`
	Visited []string `json:"visited,omitempty"`
}

type resolveReply struct {
	Lease *pool.Lease `json:"lease"`
}

type releaseRequest struct {
	Lease pool.Lease `json:"lease"`
}

type nameReply struct {
	Name string `json:"name"`
}

// Server exposes a pool manager over TCP.
type Server struct {
	pm *poolmgr.Manager
	ln net.Listener

	mu     sync.Mutex
	closed bool
	wg     sync.WaitGroup
}

// Serve starts a stage server for pm on addr with the given network
// profile.
func Serve(pm *poolmgr.Manager, addr string, profile netsim.Profile) (*Server, error) {
	if pm == nil {
		return nil, fmt.Errorf("stage: server needs a pool manager")
	}
	ln, err := netsim.Listen(addr, profile)
	if err != nil {
		return nil, err
	}
	s := &Server{pm: pm, ln: ln}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listening address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server and waits for handlers.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	_ = s.ln.Close()
	s.wg.Wait()
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.wg.Add(1)
		go s.handle(conn)
	}
}

func (s *Server) handle(conn net.Conn) {
	defer s.wg.Done()
	defer conn.Close()
	for {
		env, err := wire.ReadFrame(conn)
		if err != nil {
			return
		}
		reply := s.dispatch(env)
		if err := wire.WriteFrame(conn, reply); err != nil {
			return
		}
	}
}

func (s *Server) dispatch(env *wire.Envelope) *wire.Envelope {
	fail := func(err error) *wire.Envelope {
		e, marshalErr := wire.NewEnvelope(wire.TypeError, env.ID, wire.ErrorReply{Message: err.Error()})
		if marshalErr != nil {
			return &wire.Envelope{Type: wire.TypeError, ID: env.ID}
		}
		return e
	}
	switch env.Type {
	case wire.TypePing:
		return &wire.Envelope{Type: wire.TypePing, ID: env.ID}
	case typeName:
		reply, err := wire.NewEnvelope(typeName, env.ID, nameReply{Name: s.pm.Name()})
		if err != nil {
			return fail(err)
		}
		return reply
	case typeResolve:
		var req resolveRequest
		if err := env.Decode(&req); err != nil {
			return fail(err)
		}
		q, err := query.ParseBasic(req.Query)
		if err != nil {
			return fail(err)
		}
		lease, err := s.pm.Forward(q, req.TTL, req.Visited)
		if err != nil {
			return fail(err)
		}
		reply, err := wire.NewEnvelope(typeResolve, env.ID, resolveReply{Lease: lease})
		if err != nil {
			return fail(err)
		}
		return reply
	case typeRelease:
		var req releaseRequest
		if err := env.Decode(&req); err != nil {
			return fail(err)
		}
		if err := s.pm.Release(&req.Lease); err != nil {
			return fail(err)
		}
		reply, err := wire.NewEnvelope(typeRelease, env.ID, struct{}{})
		if err != nil {
			return fail(err)
		}
		return reply
	default:
		return fail(fmt.Errorf("stage: unknown message %q", env.Type))
	}
}

// Remote is the client stub for a remote pool manager. It satisfies
// querymgr.ResourceManager (Name/Resolve/Release) and directory.Forwarder
// (Name/Forward), so it slots into both stages' wiring. Calls serialize on
// one connection.
type Remote struct {
	addr string

	mu     sync.Mutex
	conn   net.Conn
	nextID uint64
	name   string
	ttl    int
}

// DialRemote connects a stub and fetches the remote manager's name. ttl is
// attached to Resolve calls (<=0 uses poolmgr.DefaultTTL).
func DialRemote(addr string, profile netsim.Profile, ttl int) (*Remote, error) {
	conn, err := (netsim.Dialer{Profile: profile}).Dial(addr)
	if err != nil {
		return nil, fmt.Errorf("stage: dial %s: %w", addr, err)
	}
	if ttl <= 0 {
		ttl = poolmgr.DefaultTTL
	}
	r := &Remote{addr: addr, conn: conn, ttl: ttl}
	reply, err := r.roundTrip(&wire.Envelope{Type: typeName})
	if err != nil {
		_ = conn.Close()
		return nil, err
	}
	var nr nameReply
	if err := reply.Decode(&nr); err != nil {
		_ = conn.Close()
		return nil, err
	}
	r.name = nr.Name
	return r, nil
}

// Name implements ResourceManager and Forwarder.
func (r *Remote) Name() string { return r.name }

// Close drops the connection.
func (r *Remote) Close() error { return r.conn.Close() }

// Resolve implements querymgr.ResourceManager.
func (r *Remote) Resolve(q *query.Query) (*pool.Lease, error) {
	return r.Forward(q, r.ttl, nil)
}

// Forward implements directory.Forwarder: the TTL and visited list travel
// in the wire message.
func (r *Remote) Forward(q *query.Query, ttl int, visited []string) (*pool.Lease, error) {
	env, err := wire.NewEnvelope(typeResolve, 0, resolveRequest{
		Query: q.String(), TTL: ttl, Visited: visited,
	})
	if err != nil {
		return nil, err
	}
	reply, err := r.roundTrip(env)
	if err != nil {
		return nil, err
	}
	var rr resolveReply
	if err := reply.Decode(&rr); err != nil {
		return nil, err
	}
	if rr.Lease == nil {
		return nil, fmt.Errorf("stage: remote %s returned no lease", r.name)
	}
	return rr.Lease, nil
}

// Release implements querymgr.ResourceManager.
func (r *Remote) Release(lease *pool.Lease) error {
	if lease == nil {
		return fmt.Errorf("stage: nil lease")
	}
	env, err := wire.NewEnvelope(typeRelease, 0, releaseRequest{Lease: *lease})
	if err != nil {
		return err
	}
	_, err = r.roundTrip(env)
	return err
}

func (r *Remote) roundTrip(env *wire.Envelope) (*wire.Envelope, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.nextID++
	env.ID = r.nextID
	if err := wire.WriteFrame(r.conn, env); err != nil {
		return nil, err
	}
	reply, err := wire.ReadFrame(r.conn)
	if err != nil {
		return nil, err
	}
	if reply.ID != env.ID {
		return nil, fmt.Errorf("stage: reply id %d for request %d", reply.ID, env.ID)
	}
	if reply.Type == wire.TypeError {
		var e wire.ErrorReply
		if err := reply.Decode(&e); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("stage: %s: %s", r.name, e.Message)
	}
	return reply, nil
}
