package stage

import (
	"strings"
	"testing"
	"time"

	"actyp/internal/directory"
	"actyp/internal/netsim"
	"actyp/internal/poolmgr"
	"actyp/internal/query"
	"actyp/internal/querymgr"
	"actyp/internal/registry"
)

func newPM(t testing.TB, name string, archs []string, n int) (*poolmgr.Manager, *directory.Service, *poolmgr.LocalFactory) {
	t.Helper()
	db := registry.NewDB()
	spec := registry.FleetSpec{N: n, Archs: archs, Domains: []string{"d"}, Seed: 1}
	if err := spec.Populate(db, time.Unix(0, 0)); err != nil {
		t.Fatal(err)
	}
	dir := directory.New()
	f := &poolmgr.LocalFactory{DB: db}
	t.Cleanup(f.CloseAll)
	pm, err := poolmgr.New(poolmgr.Config{Name: name, Dir: dir, Factory: f})
	if err != nil {
		t.Fatal(err)
	}
	return pm, dir, f
}

func startStage(t testing.TB, pm *poolmgr.Manager) *Server {
	t.Helper()
	srv, err := Serve(pm, "127.0.0.1:0", netsim.Local())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	return srv
}

func basic(t testing.TB, text string) *query.Query {
	t.Helper()
	q, err := query.ParseBasic(text)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func TestServeValidation(t *testing.T) {
	if _, err := Serve(nil, "127.0.0.1:0", netsim.Local()); err == nil {
		t.Error("nil manager should fail")
	}
}

func TestRemoteResolveRelease(t *testing.T) {
	pm, _, _ := newPM(t, "pm-remote", []string{"sun"}, 8)
	srv := startStage(t, pm)
	remote, err := DialRemote(srv.Addr(), netsim.Local(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()

	if remote.Name() != "pm-remote" {
		t.Errorf("name = %q", remote.Name())
	}
	lease, err := remote.Resolve(basic(t, "punch.rsrc.arch = sun"))
	if err != nil {
		t.Fatal(err)
	}
	if lease.Machine == "" {
		t.Error("empty lease")
	}
	if err := remote.Release(lease); err != nil {
		t.Fatal(err)
	}
	if err := remote.Release(lease); err == nil {
		t.Error("double release should fail")
	}
	if err := remote.Release(nil); err == nil {
		t.Error("nil lease should fail")
	}
}

func TestRemoteErrorsPropagate(t *testing.T) {
	pm, _, _ := newPM(t, "pm", []string{"sun"}, 4)
	srv := startStage(t, pm)
	remote, err := DialRemote(srv.Addr(), netsim.Local(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()
	_, err = remote.Resolve(basic(t, "punch.rsrc.arch = cray"))
	if err == nil || !strings.Contains(err.Error(), "pm") {
		t.Errorf("err = %v", err)
	}
	// The connection survives errors.
	if _, err := remote.Resolve(basic(t, "punch.rsrc.arch = sun")); err != nil {
		t.Errorf("connection broken after error: %v", err)
	}
}

// TestQueryManagerOverRemoteStage wires a local query manager to two
// remote pool-manager stages — the fully distributed pipeline.
func TestQueryManagerOverRemoteStage(t *testing.T) {
	pmSun, _, _ := newPM(t, "pm-sun", []string{"sun"}, 8)
	pmHP, _, _ := newPM(t, "pm-hp", []string{"hp"}, 8)
	srvSun := startStage(t, pmSun)
	srvHP := startStage(t, pmHP)

	remoteSun, err := DialRemote(srvSun.Addr(), netsim.Local(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer remoteSun.Close()
	remoteHP, err := DialRemote(srvHP.Addr(), netsim.Local(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer remoteHP.Close()

	sel := querymgr.NewParamSelector("arch", map[string][]int{"sun": {0}, "hp": {1}}, nil, 1)
	qm, err := querymgr.New(querymgr.Config{
		Name:     "qm",
		Managers: []querymgr.ResourceManager{remoteSun, remoteHP},
		Selector: sel,
	})
	if err != nil {
		t.Fatal(err)
	}

	resp, err := qm.SubmitText("", "punch.rsrc.arch = sun | hp")
	if err != nil {
		t.Fatal(err)
	}
	if resp.Fragments != 2 || resp.Succeeded != 2 {
		t.Errorf("resp = %+v", resp)
	}
	if err := qm.Release(resp.Lease); err != nil {
		t.Fatal(err)
	}
}

// TestDelegationAcrossRemoteStages registers a remote stage as a
// delegation peer: the visited list and TTL travel over the wire.
func TestDelegationAcrossRemoteStages(t *testing.T) {
	pmLocal, dirLocal, _ := newPM(t, "pm-local", []string{"hp"}, 4)
	pmRemote, _, _ := newPM(t, "pm-remote", []string{"alpha"}, 4)
	srv := startStage(t, pmRemote)
	remote, err := DialRemote(srv.Addr(), netsim.Local(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()
	dirLocal.AddPeer(remote)

	// An alpha query at the hp-only local manager delegates over TCP.
	lease, err := pmLocal.Resolve(basic(t, "punch.rsrc.arch = alpha"))
	if err != nil {
		t.Fatalf("delegation over the wire failed: %v", err)
	}
	if lease.Machine == "" {
		t.Error("empty delegated lease")
	}
	if err := remote.Release(lease); err != nil {
		t.Fatal(err)
	}

	// A query nobody satisfies terminates (visited list carried in the
	// wire message prevents ping-pong).
	if _, err := pmLocal.Resolve(basic(t, "punch.rsrc.arch = cray")); err == nil {
		t.Error("unsatisfiable query should fail")
	}
}

func TestRemoteTTLExpiryOverWire(t *testing.T) {
	pm, _, _ := newPM(t, "pm", []string{"sun"}, 2)
	srv := startStage(t, pm)
	remote, err := DialRemote(srv.Addr(), netsim.Local(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()
	// TTL zero dies immediately on the remote side.
	_, err = remote.Forward(basic(t, "punch.rsrc.arch = sun"), 0, nil)
	if err == nil || !strings.Contains(err.Error(), "TTL expired") {
		t.Errorf("err = %v", err)
	}
	// A visited list containing the remote's name is rejected remotely.
	_, err = remote.Forward(basic(t, "punch.rsrc.arch = sun"), 3, []string{"pm"})
	if err == nil || !strings.Contains(err.Error(), "visited") {
		t.Errorf("err = %v", err)
	}
}
