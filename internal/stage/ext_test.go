package stage

import (
	"encoding/json"
	"reflect"
	"testing"
	"time"

	"actyp/internal/netsim"
	"actyp/internal/pool"
	"actyp/internal/wire"
)

func testLease() pool.Lease {
	return pool.Lease{
		ID:           "lease-42",
		Machine:      "m07.d",
		Addr:         "10.0.0.7",
		ExecUnitPort: 9001,
		MountMgrPort: 9002,
		AccessKey:    "k-σχ-βλ", // unicode survives the byte-level codec
		Pool:         "punch/sun:1",
		Granted:      time.Unix(0, 1723100000000000000),
	}
}

// TestExtPayloadRoundTrip encodes each stage payload through the binary
// codec's extension tag and checks the decode reproduces it exactly.
func TestExtPayloadRoundTrip(t *testing.T) {
	lease := testLease()
	cases := []struct {
		name string
		in   any // pointer payload, as the call sites pass them
		out  any // zero target of the same type
	}{
		{"resolveRequest", &resolveRequest{Query: "punch.rsrc.arch = sun", TTL: 3, Visited: []string{"pm-a", "pm-b"}}, &resolveRequest{}},
		{"resolveRequest/empty", &resolveRequest{}, &resolveRequest{}},
		{"resolveReply", &resolveReply{Lease: &lease}, &resolveReply{}},
		{"resolveReply/nil-lease", &resolveReply{}, &resolveReply{Lease: &pool.Lease{}}},
		{"releaseRequest", &releaseRequest{Lease: lease}, &releaseRequest{}},
		{"nameReply", &nameReply{Name: "pm-侍"}, &nameReply{}},
	}
	for _, codec := range []wire.Codec{wire.Binary, wire.Binary2} {
		for _, tc := range cases {
			t.Run(codec.Name()+"/"+tc.name, func(t *testing.T) {
				if _, ok := tc.in.(wire.ExtPayload); !ok {
					t.Fatalf("%T does not implement wire.ExtPayload", tc.in)
				}
				env := &wire.Envelope{Type: typeResolve, ID: 7, Msg: tc.in}
				buf, err := codec.AppendEnvelope(nil, env)
				if err != nil {
					t.Fatal(err)
				}
				got, err := codec.DecodeEnvelope(buf)
				if err != nil {
					t.Fatal(err)
				}
				if err := codec.DecodePayload(got.Payload, tc.out); err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(tc.in, tc.out) {
					t.Errorf("round trip:\n in  %+v\n out %+v", tc.in, tc.out)
				}
			})
		}
	}
}

// TestExtPayloadTruncation checks every proper prefix of an ext payload
// fails to decode instead of panicking or returning silently-partial
// fields.
func TestExtPayloadTruncation(t *testing.T) {
	lease := testLease()
	env := &wire.Envelope{Type: typeResolve, ID: 1, Msg: &resolveReply{Lease: &lease}}
	buf, err := wire.Binary2.AppendEnvelope(nil, env)
	if err != nil {
		t.Fatal(err)
	}
	whole, err := wire.Binary2.DecodeEnvelope(buf)
	if err != nil {
		t.Fatal(err)
	}
	for n := range whole.Payload {
		var out resolveReply
		if err := wire.Binary2.DecodePayload(whole.Payload[:n], &out); err == nil {
			t.Fatalf("prefix of %d/%d bytes decoded without error", n, len(whole.Payload))
		}
	}
}

// TestStageJSONInterop pins a stage server to JSON and drives the normal
// remote workflow: the ext types must keep their JSON shapes for peers
// that never negotiate a binary codec.
func TestStageJSONInterop(t *testing.T) {
	pm, _, _ := newPM(t, "pm-json", []string{"sun"}, 4)
	srv, err := ServeOpts(pm, "127.0.0.1:0", netsim.Local(), ServerOptions{Codecs: []wire.Codec{wire.JSON}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	remote, err := DialRemote(srv.Addr(), netsim.Local(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()
	if remote.Name() != "pm-json" {
		t.Errorf("name = %q", remote.Name())
	}
	lease, err := remote.Resolve(basic(t, "punch.rsrc.arch = sun"))
	if err != nil {
		t.Fatal(err)
	}
	if err := remote.Release(lease); err != nil {
		t.Fatal(err)
	}
}

// TestExtJSONShapeUnchanged pins the JSON wire shape of the stage
// payloads: implementing ExtPayload must not disturb what JSON peers see.
func TestExtJSONShapeUnchanged(t *testing.T) {
	b, err := json.Marshal(&resolveRequest{Query: "q", TTL: 2, Visited: []string{"a"}})
	if err != nil {
		t.Fatal(err)
	}
	want := `{"query":"q","ttl":2,"visited":["a"]}`
	if string(b) != want {
		t.Errorf("resolveRequest JSON = %s, want %s", b, want)
	}
}
