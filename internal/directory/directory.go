// Package directory implements the local directory service of Section
// 5.2.2: pool managers use it to keep track of resource-pool instances
// (registered under their signature/identifier names) and of peer pool
// managers that queries can be delegated to. Within an administrative
// domain, replicated pipeline stages share information through this
// service.
package directory

import (
	"fmt"
	"sort"
	"sync"

	"actyp/internal/pool"
	"actyp/internal/query"
)

// Allocator is the view the directory has of a live resource pool: enough
// to route allocation and release requests. *pool.Pool implements it; the
// networked mode registers RPC stubs instead.
type Allocator interface {
	Allocate(q *query.Query) (*pool.Lease, error)
	Release(leaseID string) error
}

// PoolRef is one registered resource-pool instance.
type PoolRef struct {
	Name     query.PoolName // aggregation criteria name
	Instance string         // unique instance id (e.g. "arch,==/sun#0")
	Addr     string         // host:port for remote instances, "" if in-process
	Local    Allocator      // live handle for in-process instances
}

// Forwarder is the view the directory has of a peer pool manager, used for
// query delegation (Section 5.2.2: "forwards it to one of the pool
// managers listed in the local directory service").
type Forwarder interface {
	// Name identifies the pool manager; it appears in visited lists.
	Name() string
	// Forward continues resolution of the query at this manager. The
	// visited list and TTL travel with the query.
	Forward(q *query.Query, ttl int, visited []string) (*pool.Lease, error)
}

// Service is a concurrency-safe local directory.
type Service struct {
	mu         sync.RWMutex
	pools      map[string][]PoolRef // name.String() -> instances
	byInstance map[string]PoolRef
	peers      []Forwarder
}

// New returns an empty directory service.
func New() *Service {
	return &Service{
		pools:      make(map[string][]PoolRef),
		byInstance: make(map[string]PoolRef),
	}
}

// Register adds a pool instance. Registering a duplicate instance id fails.
func (s *Service) Register(ref PoolRef) error {
	if ref.Instance == "" {
		return fmt.Errorf("directory: pool ref needs an instance id")
	}
	if ref.Name.IsZero() {
		return fmt.Errorf("directory: pool ref %s needs a name", ref.Instance)
	}
	if ref.Local == nil && ref.Addr == "" {
		return fmt.Errorf("directory: pool ref %s needs a local handle or an address", ref.Instance)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.byInstance[ref.Instance]; dup {
		return fmt.Errorf("directory: instance %s already registered", ref.Instance)
	}
	key := ref.Name.String()
	s.pools[key] = append(s.pools[key], ref)
	s.byInstance[ref.Instance] = ref
	return nil
}

// Unregister removes a pool instance; unknown ids are a no-op.
func (s *Service) Unregister(instance string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ref, ok := s.byInstance[instance]
	if !ok {
		return
	}
	delete(s.byInstance, instance)
	key := ref.Name.String()
	refs := s.pools[key]
	for i := range refs {
		if refs[i].Instance == instance {
			s.pools[key] = append(refs[:i], refs[i+1:]...)
			break
		}
	}
	if len(s.pools[key]) == 0 {
		delete(s.pools, key)
	}
}

// Lookup returns every registered instance of the named pool.
func (s *Service) Lookup(name query.PoolName) []PoolRef {
	s.mu.RLock()
	defer s.mu.RUnlock()
	refs := s.pools[name.String()]
	out := make([]PoolRef, len(refs))
	copy(out, refs)
	return out
}

// ByInstance returns the ref registered under an instance id.
func (s *Service) ByInstance(instance string) (PoolRef, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ref, ok := s.byInstance[instance]
	return ref, ok
}

// Names returns the distinct pool names with at least one instance,
// sorted by their string form.
func (s *Service) Names() []query.PoolName {
	s.mu.RLock()
	defer s.mu.RUnlock()
	keys := make([]string, 0, len(s.pools))
	for k := range s.pools {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]query.PoolName, 0, len(keys))
	for _, k := range keys {
		out = append(out, s.pools[k][0].Name)
	}
	return out
}

// Instances returns the total number of registered pool instances.
func (s *Service) Instances() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.byInstance)
}

// AddPeer lists a peer pool manager for delegation.
func (s *Service) AddPeer(f Forwarder) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.peers = append(s.peers, f)
}

// Peers returns the delegation peers in registration order.
func (s *Service) Peers() []Forwarder {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]Forwarder, len(s.peers))
	copy(out, s.peers)
	return out
}
