// Package directory implements the local directory service of Section
// 5.2.2: pool managers use it to keep track of resource-pool instances
// (registered under their signature/identifier names) and of peer pool
// managers that queries can be delegated to. Within an administrative
// domain, replicated pipeline stages share information through this
// service.
package directory

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"actyp/internal/pool"
	"actyp/internal/query"
)

// Allocator is the view the directory has of a live resource pool: enough
// to route allocation and release requests. *pool.Pool implements it; the
// networked mode registers RPC stubs instead.
type Allocator interface {
	Allocate(q *query.Query) (*pool.Lease, error)
	Release(leaseID string) error
}

// PoolRef is one registered resource-pool instance.
type PoolRef struct {
	Name     query.PoolName // aggregation criteria name
	Instance string         // unique instance id (e.g. "arch,==/sun#0")
	Addr     string         // host:port for remote instances, "" if in-process
	Local    Allocator      // live handle for in-process instances
}

// Forwarder is the view the directory has of a peer pool manager, used for
// query delegation (Section 5.2.2: "forwards it to one of the pool
// managers listed in the local directory service").
type Forwarder interface {
	// Name identifies the pool manager; it appears in visited lists.
	Name() string
	// Forward continues resolution of the query at this manager. The
	// visited list and TTL travel with the query.
	Forward(q *query.Query, ttl int, visited []string) (*pool.Lease, error)
}

// ContextForwarder is an optional extension of Forwarder: peers that
// implement it honour cancellation, which the parallel first-win
// delegation path uses to call losing branches off as soon as one peer
// grants a lease. Peers without it are still raced — their branch just
// runs to completion and any late lease is handed to LeaseReleaser.
type ContextForwarder interface {
	Forwarder
	// ForwardContext is Forward with cancellation. A cancelled branch
	// returns ctx.Err(); the implementation remains responsible for
	// releasing a lease that was granted remotely after the cancel landed
	// (it must not orphan capacity on the peer).
	ForwardContext(ctx context.Context, q *query.Query, ttl int, visited []string) (*pool.Lease, error)
}

// LeaseReleaser is an optional extension of Forwarder: peers that
// implement it can take a granted lease back, which the fan-out path uses
// to return losing branches' leases instead of leaking them.
type LeaseReleaser interface {
	Release(lease *pool.Lease) error
}

// snapshot is one immutable view of the directory. Readers load it with a
// single atomic pointer read and walk it without locking or copying;
// mutations build a replacement under the write lock. The slices and maps
// inside a published snapshot are never modified again.
type snapshot struct {
	pools      map[string][]PoolRef // name.String() -> instances
	byInstance map[string]PoolRef
	peers      []Forwarder
}

var emptySnapshot = &snapshot{
	pools:      map[string][]PoolRef{},
	byInstance: map[string]PoolRef{},
}

// Service is a concurrency-safe local directory. Reads (Lookup, ByInstance,
// Peers — the per-request resolve path) are lock-free against a
// copy-on-write snapshot; only mutations (Register, Unregister, AddPeer —
// pool lifecycle events, orders of magnitude rarer) take the write lock to
// swap in a rebuilt snapshot.
type Service struct {
	mu   sync.Mutex // serializes mutations only; readers never take it
	snap atomic.Pointer[snapshot]
}

// New returns an empty directory service.
func New() *Service {
	s := &Service{}
	s.snap.Store(emptySnapshot)
	return s
}

// rebuild clones the current snapshot, applies mutate to the clone, and
// publishes it. Callers must hold s.mu.
func (s *Service) rebuild(mutate func(next *snapshot)) {
	cur := s.snap.Load()
	next := &snapshot{
		pools:      make(map[string][]PoolRef, len(cur.pools)),
		byInstance: make(map[string]PoolRef, len(cur.byInstance)),
		peers:      cur.peers, // immutable; AddPeer replaces wholesale
	}
	for k, refs := range cur.pools {
		next.pools[k] = refs // per-name slices are immutable too
	}
	for k, ref := range cur.byInstance {
		next.byInstance[k] = ref
	}
	mutate(next)
	s.snap.Store(next)
}

// Register adds a pool instance. Registering a duplicate instance id fails.
func (s *Service) Register(ref PoolRef) error {
	if ref.Instance == "" {
		return fmt.Errorf("directory: pool ref needs an instance id")
	}
	if ref.Name.IsZero() {
		return fmt.Errorf("directory: pool ref %s needs a name", ref.Instance)
	}
	if ref.Local == nil && ref.Addr == "" {
		return fmt.Errorf("directory: pool ref %s needs a local handle or an address", ref.Instance)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.snap.Load().byInstance[ref.Instance]; dup {
		return fmt.Errorf("directory: instance %s already registered", ref.Instance)
	}
	s.rebuild(func(next *snapshot) {
		key := ref.Name.String()
		old := next.pools[key]
		refs := make([]PoolRef, 0, len(old)+1)
		refs = append(append(refs, old...), ref)
		next.pools[key] = refs
		next.byInstance[ref.Instance] = ref
	})
	return nil
}

// Unregister removes a pool instance; unknown ids are a no-op.
func (s *Service) Unregister(instance string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ref, ok := s.snap.Load().byInstance[instance]
	if !ok {
		return
	}
	s.rebuild(func(next *snapshot) {
		delete(next.byInstance, instance)
		key := ref.Name.String()
		old := next.pools[key]
		refs := make([]PoolRef, 0, len(old))
		for _, r := range old {
			if r.Instance != instance {
				refs = append(refs, r)
			}
		}
		if len(refs) == 0 {
			delete(next.pools, key)
		} else {
			next.pools[key] = refs
		}
	})
}

// Lookup returns every registered instance of the named pool. The returned
// slice is a shared immutable snapshot: callers must not modify it.
func (s *Service) Lookup(name query.PoolName) []PoolRef {
	return s.snap.Load().pools[name.String()]
}

// ByInstance returns the ref registered under an instance id.
func (s *Service) ByInstance(instance string) (PoolRef, bool) {
	ref, ok := s.snap.Load().byInstance[instance]
	return ref, ok
}

// Names returns the distinct pool names with at least one instance,
// sorted by their string form.
func (s *Service) Names() []query.PoolName {
	snap := s.snap.Load()
	keys := make([]string, 0, len(snap.pools))
	for k := range snap.pools {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]query.PoolName, 0, len(keys))
	for _, k := range keys {
		out = append(out, snap.pools[k][0].Name)
	}
	return out
}

// Instances returns the total number of registered pool instances.
func (s *Service) Instances() int {
	return len(s.snap.Load().byInstance)
}

// AddPeer lists a peer pool manager for delegation.
func (s *Service) AddPeer(f Forwarder) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.rebuild(func(next *snapshot) {
		peers := make([]Forwarder, 0, len(next.peers)+1)
		next.peers = append(append(peers, next.peers...), f)
	})
}

// Peers returns the delegation peers in registration order. The returned
// slice is a shared immutable snapshot: callers must not modify it.
func (s *Service) Peers() []Forwarder {
	return s.snap.Load().peers
}
