package directory

import (
	"testing"

	"actyp/internal/pool"
	"actyp/internal/query"
)

type fakeAllocator struct{ id string }

func (f *fakeAllocator) Allocate(q *query.Query) (*pool.Lease, error) {
	return &pool.Lease{ID: f.id}, nil
}
func (f *fakeAllocator) Release(leaseID string) error { return nil }

type fakeForwarder struct{ name string }

func (f *fakeForwarder) Name() string { return f.name }
func (f *fakeForwarder) Forward(q *query.Query, ttl int, visited []string) (*pool.Lease, error) {
	return nil, nil
}

func poolName(t *testing.T, text string) query.PoolName {
	t.Helper()
	q, err := query.ParseBasic(text)
	if err != nil {
		t.Fatal(err)
	}
	return query.Name(q)
}

func TestRegisterLookupUnregister(t *testing.T) {
	s := New()
	n := poolName(t, "punch.rsrc.arch = sun")
	ref := PoolRef{Name: n, Instance: "i0", Local: &fakeAllocator{id: "a"}}
	if err := s.Register(ref); err != nil {
		t.Fatal(err)
	}
	if err := s.Register(ref); err == nil {
		t.Error("duplicate instance should fail")
	}
	if err := s.Register(PoolRef{Name: n, Instance: "i1", Addr: "host:1"}); err != nil {
		t.Fatal(err)
	}
	if got := s.Lookup(n); len(got) != 2 {
		t.Errorf("lookup = %d refs", len(got))
	}
	if s.Instances() != 2 {
		t.Errorf("instances = %d", s.Instances())
	}
	if ref, ok := s.ByInstance("i1"); !ok || ref.Addr != "host:1" {
		t.Errorf("ByInstance = %+v, %v", ref, ok)
	}
	s.Unregister("i0")
	s.Unregister("i0") // no-op
	if got := s.Lookup(n); len(got) != 1 || got[0].Instance != "i1" {
		t.Errorf("after unregister: %v", got)
	}
	s.Unregister("i1")
	if got := s.Names(); len(got) != 0 {
		t.Errorf("names after full unregister = %v", got)
	}
}

func TestRegisterValidation(t *testing.T) {
	s := New()
	n := poolName(t, "punch.rsrc.arch = sun")
	bad := []PoolRef{
		{Name: n, Instance: "", Local: &fakeAllocator{}},
		{Instance: "x", Local: &fakeAllocator{}},
		{Name: n, Instance: "x"}, // neither local nor addr
	}
	for i, ref := range bad {
		if err := s.Register(ref); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}

func TestLookupSnapshotsAreImmutable(t *testing.T) {
	s := New()
	n := poolName(t, "punch.rsrc.arch = sun")
	if err := s.Register(PoolRef{Name: n, Instance: "i0", Addr: "a:1"}); err != nil {
		t.Fatal(err)
	}
	// A slice handed out before a mutation is a frozen snapshot: the
	// directory's later changes never reach it, and it stays readable.
	before := s.Lookup(n)
	if err := s.Register(PoolRef{Name: n, Instance: "i1", Addr: "a:2"}); err != nil {
		t.Fatal(err)
	}
	if len(before) != 1 || before[0].Instance != "i0" {
		t.Errorf("pre-mutation snapshot changed: %v", before)
	}
	after := s.Lookup(n)
	if len(after) != 2 {
		t.Fatalf("post-mutation lookup = %v", after)
	}
	s.Unregister("i0")
	if len(after) != 2 || after[0].Instance != "i0" {
		t.Errorf("snapshot changed by Unregister: %v", after)
	}
	if got := s.Lookup(n); len(got) != 1 || got[0].Instance != "i1" {
		t.Errorf("lookup after unregister = %v", got)
	}
}

func TestNamesSorted(t *testing.T) {
	s := New()
	for _, text := range []string{
		"punch.rsrc.arch = sun",
		"punch.rsrc.arch = hp",
		"punch.rsrc.memory = >=10",
	} {
		n := poolName(t, text)
		if err := s.Register(PoolRef{Name: n, Instance: n.String(), Addr: "x:1"}); err != nil {
			t.Fatal(err)
		}
	}
	names := s.Names()
	if len(names) != 3 {
		t.Fatalf("names = %v", names)
	}
	for i := 1; i < len(names); i++ {
		if names[i-1].String() >= names[i].String() {
			t.Errorf("names not sorted: %v", names)
		}
	}
}

func TestPeers(t *testing.T) {
	s := New()
	if got := s.Peers(); len(got) != 0 {
		t.Errorf("fresh directory has peers: %v", got)
	}
	a, b := &fakeForwarder{name: "pm-a"}, &fakeForwarder{name: "pm-b"}
	s.AddPeer(a)
	s.AddPeer(b)
	got := s.Peers()
	if len(got) != 2 || got[0].Name() != "pm-a" || got[1].Name() != "pm-b" {
		t.Errorf("peers = %v", got)
	}
	// A peers slice handed out before a mutation is a frozen snapshot.
	s.AddPeer(&fakeForwarder{name: "pm-c"})
	if len(got) != 2 || got[0].Name() != "pm-a" {
		t.Errorf("pre-mutation snapshot changed: %v", got)
	}
	if now := s.Peers(); len(now) != 3 || now[2].Name() != "pm-c" {
		t.Errorf("peers after AddPeer = %v", now)
	}
}
