package netsim

import (
	"net"
	"testing"
	"time"
)

func TestProfiles(t *testing.T) {
	if !Local().Zero() {
		t.Error("local profile should be zero")
	}
	if LAN().Zero() || WAN().Zero() {
		t.Error("LAN/WAN profiles should add delay")
	}
	if WAN().Latency <= LAN().Latency {
		t.Error("WAN must be slower than LAN")
	}
}

func TestDelayerBounds(t *testing.T) {
	p := Profile{Latency: time.Millisecond, Jitter: time.Millisecond, Seed: 42}
	d := NewDelayer(p)
	for i := 0; i < 1000; i++ {
		delay := d.Next()
		if delay < p.Latency || delay >= p.Latency+p.Jitter {
			t.Fatalf("delay %v out of [%v, %v)", delay, p.Latency, p.Latency+p.Jitter)
		}
	}
}

func TestDelayerNoJitter(t *testing.T) {
	d := NewDelayer(Profile{Latency: 3 * time.Millisecond})
	if got := d.Next(); got != 3*time.Millisecond {
		t.Errorf("delay = %v", got)
	}
}

func TestWrapConnZeroProfilePassesThrough(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	if got := WrapConn(a, Local()); got != a {
		t.Error("zero profile should not wrap")
	}
	if got := WrapConn(a, LAN()); got == a {
		t.Error("non-zero profile should wrap")
	}
}

func TestLatencyObservableOverLoopback(t *testing.T) {
	ln, err := Listen("127.0.0.1:0", Profile{Latency: 20 * time.Millisecond, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		buf := make([]byte, 4)
		for {
			if _, err := conn.Read(buf); err != nil {
				return
			}
			if _, err := conn.Write(buf); err != nil {
				return
			}
		}
	}()

	conn, err := (Dialer{Profile: Profile{Latency: 20 * time.Millisecond, Seed: 1}}).Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	// One round trip: client write delayed 20ms, server echo delayed 20ms.
	start := time.Now()
	if _, err := conn.Write([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	if _, err := conn.Read(buf); err != nil {
		t.Fatal(err)
	}
	rtt := time.Since(start)
	if rtt < 40*time.Millisecond {
		t.Errorf("rtt = %v, want >= 40ms", rtt)
	}
	if rtt > 500*time.Millisecond {
		t.Errorf("rtt = %v, absurdly slow", rtt)
	}
}

func TestDialerErrors(t *testing.T) {
	if _, err := (Dialer{Timeout: 50 * time.Millisecond}).Dial("127.0.0.1:1"); err == nil {
		t.Error("dial to closed port should fail")
	}
}

func TestBandwidthProfile(t *testing.T) {
	if WAN().Bandwidth <= 0 {
		t.Error("WAN profile should model bandwidth")
	}
	if LAN().Bandwidth != 0 {
		t.Error("LAN profile deliberately stays unlimited")
	}
	if (Profile{Bandwidth: 1 << 20}).Zero() {
		t.Error("a bandwidth cap alone is not a zero profile")
	}
}

// TestBandwidthSerializationDelay sends a large payload over a
// zero-latency, bandwidth-capped link and checks delivery takes about
// size/Bandwidth — and that consecutive writes serialize (store-and-
// forward) instead of overlapping.
func TestBandwidthSerializationDelay(t *testing.T) {
	ln, err := Listen("127.0.0.1:0", Profile{}) // server side unshaped
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	done := make(chan time.Time, 1)
	const total = 512 << 10 // 2 writes x 256KiB at 1MiB/s = ~500ms
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		buf := make([]byte, 64<<10)
		got := 0
		for got < total {
			n, err := conn.Read(buf)
			if err != nil {
				return
			}
			got += n
		}
		done <- time.Now()
	}()

	conn, err := (Dialer{Profile: Profile{Bandwidth: 1 << 20, Seed: 1}}).Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	start := time.Now()
	payload := make([]byte, total/2)
	for i := 0; i < 2; i++ {
		if _, err := conn.Write(payload); err != nil {
			t.Fatal(err)
		}
	}
	end := <-done
	elapsed := end.Sub(start)
	if elapsed < 450*time.Millisecond {
		t.Errorf("delivery took %v, want >= ~500ms of serialization", elapsed)
	}
	if elapsed > 5*time.Second {
		t.Errorf("delivery took %v, absurdly slow", elapsed)
	}
}
