// Package netsim provides the controlled-network substrate for the
// experiments of Section 7. The paper ran its LAN experiments inside one
// machine room and its WAN experiment between Purdue (USA) and UPC
// (Spain); this package reproduces both configurations on one host by
// wrapping net.Conn with configurable one-way latency and jitter.
package netsim

import (
	"math/rand"
	"net"
	"sync"
	"time"
)

// Profile describes link behaviour: a fixed one-way latency plus uniform
// jitter in [0, Jitter), and optionally a bandwidth cap. With Bandwidth
// set, each write additionally pays size/Bandwidth of serialization delay
// on a per-direction transmit queue (store-and-forward: a write cannot
// start transmitting until the previous one finished), so large frames
// cost wall-clock time proportional to their bytes — without it a 64KiB
// reply crosses the simulated WAN as cheaply as a ping.
type Profile struct {
	Latency   time.Duration // one-way propagation delay
	Jitter    time.Duration // additional uniform random delay
	Bandwidth float64       // link bandwidth in bytes/s (0 means unlimited)
	Seed      int64         // jitter stream seed (0 means 1)
}

// Local is a zero-delay profile (direct function calls / loopback).
func Local() Profile { return Profile{} }

// LAN models the paper's machine-room configuration: sub-millisecond
// one-way latency.
func LAN() Profile {
	return Profile{Latency: 200 * time.Microsecond, Jitter: 50 * time.Microsecond, Seed: 1}
}

// WAN models the Purdue–UPC transatlantic link of Section 7:
// tens-of-milliseconds one-way latency with moderate jitter, and the
// few-Mbit/s effective throughput of the era's academic trans-Atlantic
// paths (256 KiB/s ≈ 2 Mbit/s). The LAN profile deliberately stays
// unlimited: machine-room links are never the experiments' bottleneck.
func WAN() Profile {
	return Profile{Latency: 45 * time.Millisecond, Jitter: 5 * time.Millisecond, Bandwidth: 256 << 10, Seed: 1}
}

// Zero reports whether the profile adds no delay (and no bandwidth cap).
func (p Profile) Zero() bool { return p.Latency <= 0 && p.Jitter <= 0 && p.Bandwidth <= 0 }

// Delayer produces per-message delays for one flow.
type Delayer struct {
	p   Profile
	mu  sync.Mutex
	rng *rand.Rand
}

// NewDelayer builds a delayer for a profile.
func NewDelayer(p Profile) *Delayer {
	seed := p.Seed
	if seed == 0 {
		seed = 1
	}
	return &Delayer{p: p, rng: rand.New(rand.NewSource(seed))}
}

// Next returns the next one-way delay.
func (d *Delayer) Next() time.Duration {
	delay := d.p.Latency
	if d.p.Jitter > 0 {
		d.mu.Lock()
		delay += time.Duration(d.rng.Int63n(int64(d.p.Jitter)))
		d.mu.Unlock()
	}
	return delay
}

// Sleep blocks for the next one-way delay.
func (d *Delayer) Sleep() {
	if delay := d.Next(); delay > 0 {
		time.Sleep(delay)
	}
}

// maxQueuedChunks bounds a Conn's delivery queue. A link only buffers so
// much in flight: once the queue is full, Write blocks until the pump
// drains — the flow-control pushback a real socket would exert.
const maxQueuedChunks = 256

// closeGrace is how long Close waits beyond the queued chunks' due times
// for the flush to complete before closing the underlying connection out
// from under a pump stalled on an unresponsive peer.
const closeGrace = 250 * time.Millisecond

// Conn wraps a net.Conn, delaying the *delivery* of every Write by the
// profile's one-way latency: Write stamps the data with a due time and
// returns (without blocking, while queue space lasts), and a background
// pump forwards each chunk to the wrapped connection once its due time
// arrives. In a closed-loop request/response exchange this yields one
// round-trip time of delay per exchange, exactly as before — but, like a
// real link, propagation delay no longer consumes sender occupancy, so
// multiple in-flight frames on one connection overlap their delays
// instead of serializing on them.
type Conn struct {
	net.Conn
	d *Delayer

	mu       sync.Mutex
	pumpCond *sync.Cond // pump waits here for work
	sendCond *sync.Cond // writers wait here for queue space
	queue    []chunk
	// busyUntil is when this direction's transmitter frees up: with a
	// bandwidth cap, a write starts serializing at max(now, busyUntil)
	// and holds the link for size/Bandwidth (store-and-forward).
	busyUntil time.Time
	err       error // first underlying write error, returned by later Writes
	closed    bool
	done      chan struct{} // pump exited
}

// chunk is one delayed write.
type chunk struct {
	data []byte
	due  time.Time
}

// WrapConn applies a profile to an existing connection. A zero profile
// returns the connection unchanged.
func WrapConn(c net.Conn, p Profile) net.Conn {
	if p.Zero() {
		return c
	}
	nc := &Conn{
		Conn: c,
		d:    NewDelayer(p),
		done: make(chan struct{}),
	}
	nc.pumpCond = sync.NewCond(&nc.mu)
	nc.sendCond = sync.NewCond(&nc.mu)
	go nc.pump()
	return nc
}

// Write queues the data for delivery one one-way delay from now — plus,
// under a bandwidth cap, the serialization delay of every byte queued
// ahead of it — blocking only when the bounded queue is full. The copy is
// mandatory: callers (and pooled frame encoders) reuse b immediately.
func (c *Conn) Write(b []byte) (int, error) {
	c.mu.Lock()
	for len(c.queue) >= maxQueuedChunks && !c.closed && c.err == nil {
		c.sendCond.Wait()
	}
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		return 0, err
	}
	if c.closed {
		c.mu.Unlock()
		return 0, net.ErrClosed
	}
	// Delivery is due after propagation (latency+jitter); with a
	// bandwidth cap, serialization happens first, on a transmitter that
	// frees up only when the previous write's bytes are out. Propagation
	// of consecutive writes still overlaps — only serialization is a
	// shared resource, exactly like a real link.
	now := time.Now()
	due := now
	if bw := c.d.p.Bandwidth; bw > 0 {
		start := now
		if c.busyUntil.After(start) {
			start = c.busyUntil
		}
		txEnd := start.Add(time.Duration(float64(len(b)) / bw * float64(time.Second)))
		c.busyUntil = txEnd
		due = txEnd
	}
	due = due.Add(c.d.Next())
	c.queue = append(c.queue, chunk{data: append([]byte(nil), b...), due: due})
	c.pumpCond.Signal()
	c.mu.Unlock()
	return len(b), nil
}

// pump delivers queued chunks in FIFO order at their due times.
func (c *Conn) pump() {
	defer close(c.done)
	for {
		c.mu.Lock()
		for len(c.queue) == 0 && !c.closed && c.err == nil {
			c.pumpCond.Wait()
		}
		if len(c.queue) == 0 { // closed or failed, and fully drained
			c.sendCond.Broadcast()
			c.mu.Unlock()
			return
		}
		ch := c.queue[0]
		c.queue = c.queue[1:]
		c.sendCond.Signal()
		c.mu.Unlock()
		if d := time.Until(ch.due); d > 0 {
			time.Sleep(d)
		}
		if _, err := c.Conn.Write(ch.data); err != nil {
			c.mu.Lock()
			c.err = err
			c.queue = nil
			c.sendCond.Broadcast()
			c.mu.Unlock()
			return
		}
	}
}

// Close flushes queued writes (bounded by their due times plus a grace
// period), then closes the wrapped connection — so a reply written just
// before Close is still delivered, as it was when Write slept inline, but
// a pump wedged on an unresponsive peer cannot hang Close: after the
// grace the underlying close errors the stuck write out.
func (c *Conn) Close() error {
	c.mu.Lock()
	c.closed = true
	c.pumpCond.Signal()
	c.sendCond.Broadcast()
	// Every queued chunk is due at most one full propagation delay after
	// the transmitter frees up, so (remaining serialization) + latency +
	// jitter + grace bounds the whole flush unless the underlying write
	// itself is stuck.
	flush := c.d.p.Latency + c.d.p.Jitter + closeGrace
	if tx := time.Until(c.busyUntil); tx > 0 {
		flush += tx
	}
	c.mu.Unlock()
	select {
	case <-c.done:
	case <-time.After(flush):
	}
	err := c.Conn.Close()
	<-c.done
	return err
}

// Dialer dials TCP connections and applies the profile to each.
type Dialer struct {
	Profile Profile
	Timeout time.Duration // per-dial timeout (default 5s)
}

// Dial connects to addr and wraps the connection.
func (d Dialer) Dial(addr string) (net.Conn, error) {
	timeout := d.Timeout
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	c, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	return WrapConn(c, d.Profile), nil
}

// Listener wraps an accept loop so that server-side writes are delayed
// symmetrically.
type Listener struct {
	net.Listener
	Profile Profile
}

// Accept wraps each accepted connection with the profile.
func (l *Listener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return WrapConn(c, l.Profile), nil
}

// Listen opens a TCP listener on addr (use "127.0.0.1:0" for tests) whose
// connections carry the profile.
func Listen(addr string, p Profile) (*Listener, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Listener{Listener: l, Profile: p}, nil
}
