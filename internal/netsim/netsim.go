// Package netsim provides the controlled-network substrate for the
// experiments of Section 7. The paper ran its LAN experiments inside one
// machine room and its WAN experiment between Purdue (USA) and UPC
// (Spain); this package reproduces both configurations on one host by
// wrapping net.Conn with configurable one-way latency and jitter.
package netsim

import (
	"math/rand"
	"net"
	"sync"
	"time"
)

// Profile describes link behaviour: a fixed one-way latency plus uniform
// jitter in [0, Jitter).
type Profile struct {
	Latency time.Duration // one-way propagation delay
	Jitter  time.Duration // additional uniform random delay
	Seed    int64         // jitter stream seed (0 means 1)
}

// Local is a zero-delay profile (direct function calls / loopback).
func Local() Profile { return Profile{} }

// LAN models the paper's machine-room configuration: sub-millisecond
// one-way latency.
func LAN() Profile {
	return Profile{Latency: 200 * time.Microsecond, Jitter: 50 * time.Microsecond, Seed: 1}
}

// WAN models the Purdue–UPC transatlantic link of Section 7:
// tens-of-milliseconds one-way latency with moderate jitter.
func WAN() Profile {
	return Profile{Latency: 45 * time.Millisecond, Jitter: 5 * time.Millisecond, Seed: 1}
}

// Zero reports whether the profile adds no delay.
func (p Profile) Zero() bool { return p.Latency <= 0 && p.Jitter <= 0 }

// Delayer produces per-message delays for one flow.
type Delayer struct {
	p   Profile
	mu  sync.Mutex
	rng *rand.Rand
}

// NewDelayer builds a delayer for a profile.
func NewDelayer(p Profile) *Delayer {
	seed := p.Seed
	if seed == 0 {
		seed = 1
	}
	return &Delayer{p: p, rng: rand.New(rand.NewSource(seed))}
}

// Next returns the next one-way delay.
func (d *Delayer) Next() time.Duration {
	delay := d.p.Latency
	if d.p.Jitter > 0 {
		d.mu.Lock()
		delay += time.Duration(d.rng.Int63n(int64(d.p.Jitter)))
		d.mu.Unlock()
	}
	return delay
}

// Sleep blocks for the next one-way delay.
func (d *Delayer) Sleep() {
	if delay := d.Next(); delay > 0 {
		time.Sleep(delay)
	}
}

// Conn wraps a net.Conn, delaying every Write by the profile's one-way
// latency. In a closed-loop request/response exchange this yields one
// round-trip time of delay per exchange, matching how the experiments
// measure response time.
type Conn struct {
	net.Conn
	d *Delayer
}

// WrapConn applies a profile to an existing connection. A zero profile
// returns the connection unchanged.
func WrapConn(c net.Conn, p Profile) net.Conn {
	if p.Zero() {
		return c
	}
	return &Conn{Conn: c, d: NewDelayer(p)}
}

// Write delays, then forwards to the wrapped connection.
func (c *Conn) Write(b []byte) (int, error) {
	c.d.Sleep()
	return c.Conn.Write(b)
}

// Dialer dials TCP connections and applies the profile to each.
type Dialer struct {
	Profile Profile
	Timeout time.Duration // per-dial timeout (default 5s)
}

// Dial connects to addr and wraps the connection.
func (d Dialer) Dial(addr string) (net.Conn, error) {
	timeout := d.Timeout
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	c, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	return WrapConn(c, d.Profile), nil
}

// Listener wraps an accept loop so that server-side writes are delayed
// symmetrically.
type Listener struct {
	net.Listener
	Profile Profile
}

// Accept wraps each accepted connection with the profile.
func (l *Listener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return WrapConn(c, l.Profile), nil
}

// Listen opens a TCP listener on addr (use "127.0.0.1:0" for tests) whose
// connections carry the profile.
func Listen(addr string, p Profile) (*Listener, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Listener{Listener: l, Profile: p}, nil
}
