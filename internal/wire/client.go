package wire

import (
	"context"
	"errors"
	"fmt"
	"math"
	"net"
	"sync"
	"time"

	"actyp/internal/metrics"
)

// DialFunc opens the transport connection a Client multiplexes. The client
// invokes it lazily on first use and again after a connection failure, so
// reconnection policy lives in one place.
type DialFunc func() (net.Conn, error)

// ErrClosed is returned by calls issued against (or in flight on) a client
// that has been closed.
var ErrClosed = errors.New("wire: client closed")

// ErrConnLost wraps failures of calls that died with their connection; the
// request may or may not have executed. Idempotent calls retry on it.
var ErrConnLost = errors.New("wire: connection lost")

// ErrDial wraps failures to establish (or negotiate) a connection.
// Idempotent calls retry on it.
var ErrDial = errors.New("wire: dial")

// RemoteError is a failure the server reported through an error envelope.
// The connection itself is healthy; only this call failed.
type RemoteError struct {
	Message string
}

func (e *RemoteError) Error() string { return e.Message }

// BusyError is a Busy reply: the server shed the request before any
// worker touched it (admission limit, full lane queue, or expired
// deadline). The connection is healthy. Busy is deliberately NOT
// Retryable — hammering an overloaded server defeats the shedding — but
// CallIdempotent retries it after honouring RetryAfter (plus jitter).
type BusyError struct {
	// RetryAfter is the server's hint for when capacity should exist
	// again (zero when it offered none).
	RetryAfter time.Duration
	Reason     string
}

func (e *BusyError) Error() string {
	if e.Reason != "" {
		return "wire: server busy: " + e.Reason
	}
	return "wire: server busy"
}

// ClientOptions configures a Client beyond its dial function.
type ClientOptions struct {
	// Timeout bounds each call that arrives without its own context
	// deadline; zero means no bound.
	Timeout time.Duration
	// Codecs is the negotiation preference, best first (nil means
	// DefaultCodecs). Offering only JSON pins connections to JSON.
	Codecs []Codec
	// DisableNegotiation speaks plain JSON with no hello — exactly how a
	// pre-codec client behaves. Tests use it to prove old clients keep
	// working against new servers.
	DisableNegotiation bool
	// From names the requesting account or group. It is stamped on every
	// outgoing envelope as the server's admission-bucket key; codecs
	// without envelope identity (binary v1) drop it silently.
	From string
	// Stats, when set, accounts every frame the client writes and reads
	// (bytes, frames, compressed-vs-raw) under the connection codec's
	// name.
	Stats *metrics.WireStats
}

// Client multiplexes concurrent requests over one connection: every call
// writes a frame tagged with a fresh envelope id and parks on a private
// reply channel, while a single reader goroutine demultiplexes whatever
// reply arrives next to the call that owns its id. Replies may therefore
// return in any order, and N callers share one connection without waiting
// for each other's round trips. Each new connection starts with the codec
// handshake (unless negotiation is disabled), so frames travel in the best
// codec both ends speak.
//
// A failed connection fails every in-flight call; a background loop then
// redials with exponential backoff so heartbeating callers find a live
// connection again without paying the dial themselves (the next call also
// redials on demand, whichever comes first). Client is safe for concurrent
// use.
type Client struct {
	dialFn      DialFunc
	timeout     time.Duration
	codecs      []Codec
	noNegotiate bool
	from        string
	stats       *metrics.WireStats

	writeMu sync.Mutex // serializes frame writes on the live connection

	mu           sync.Mutex
	conn         net.Conn
	framer       *Framer
	pending      map[uint64]chan callResult
	streams      map[uint64]*ClientStream // live server-push subscriptions (see stream.go)
	nextID       uint64
	closed       bool
	reconnecting bool
}

type callResult struct {
	env *Envelope
	err error
}

// NewClient builds a client over dial with the default codec preference.
// timeout bounds each call that arrives without its own context deadline;
// zero means no bound.
func NewClient(dial DialFunc, timeout time.Duration) *Client {
	return NewClientOpts(dial, ClientOptions{Timeout: timeout})
}

// NewClientOpts builds a client over dial with explicit options.
func NewClientOpts(dial DialFunc, opts ClientOptions) *Client {
	codecs := opts.Codecs
	if codecs == nil {
		codecs = DefaultCodecs()
	}
	return &Client{
		dialFn:      dial,
		timeout:     opts.Timeout,
		codecs:      codecs,
		noNegotiate: opts.DisableNegotiation,
		from:        opts.From,
		stats:       opts.Stats,
		pending:     make(map[uint64]chan callResult),
	}
}

// Connect ensures a live connection, dialing (and negotiating the codec)
// if necessary. Calls dial lazily anyway; Connect exists so constructors
// can surface dial errors immediately.
func (c *Client) Connect() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrClosed
	}
	return c.ensureConnLocked()
}

// CodecName reports the codec of the live connection ("" when none is up).
func (c *Client) CodecName() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn == nil || c.framer == nil {
		return ""
	}
	return c.framer.Codec().Name()
}

// Close fails every in-flight call and drops the connection. Subsequent
// calls return ErrClosed.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	conn := c.conn
	c.conn = nil
	c.framer = nil
	c.failPendingLocked(ErrClosed)
	c.failStreamsLocked(ErrClosed)
	c.mu.Unlock()
	if conn != nil {
		return conn.Close()
	}
	return nil
}

// Call round-trips one request under the client's default timeout.
func (c *Client) Call(typ string, payload any) (*Envelope, error) {
	return c.CallContext(context.Background(), typ, payload)
}

// CallContext round-trips one request. A nil payload sends a bare
// envelope. The reply envelope is returned as-is unless it is an error
// envelope, which is decoded into a *RemoteError. Cancelling the context
// abandons the call (a late reply is discarded); it does not disturb other
// calls in flight on the same connection.
func (c *Client) CallContext(ctx context.Context, typ string, payload any) (*Envelope, error) {
	env := &Envelope{Type: typ, Msg: payload, From: c.from}

	if c.timeout > 0 {
		if _, has := ctx.Deadline(); !has {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, c.timeout)
			defer cancel()
		}
	}
	// The caller's deadline travels in the envelope so the server can
	// shed work that cannot finish in time. Codecs without the field
	// (binary v1, old JSON peers) drop it, which degrades to the old
	// no-deadline behaviour.
	if dl, ok := ctx.Deadline(); ok {
		env.SetDeadline(dl)
	}

	// Register the call: id assignment, pending entry, and the connection
	// it will travel on are decided under one lock.
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClosed
	}
	if err := c.ensureConnLocked(); err != nil {
		c.mu.Unlock()
		return nil, err
	}
	c.nextID++
	env.ID = c.nextID
	ch := make(chan callResult, 1)
	c.pending[env.ID] = ch
	conn, framer := c.conn, c.framer
	c.mu.Unlock()

	c.writeMu.Lock()
	err := framer.WriteFrame(conn, env)
	c.writeMu.Unlock()
	if err != nil {
		if preWire(err) {
			// Rejected before any bytes hit the wire: the connection is
			// fine, only this call fails.
			c.mu.Lock()
			delete(c.pending, env.ID)
			c.mu.Unlock()
			return nil, err
		}
		// Any other frame-write failure means the connection is broken:
		// tear it down (failing every call in flight on it, ourselves
		// included).
		c.connFailed(conn, err)
	}

	select {
	case res := <-ch:
		if res.err != nil {
			return nil, res.err
		}
		if res.env.Type == TypeError {
			var e ErrorReply
			if err := res.env.Decode(&e); err != nil {
				return nil, err
			}
			return nil, &RemoteError{Message: e.Message}
		}
		if res.env.Type == TypeBusy {
			var b BusyReply
			if err := res.env.Decode(&b); err != nil {
				return nil, err
			}
			return nil, &BusyError{RetryAfter: time.Duration(b.RetryAfterMS) * time.Millisecond, Reason: b.Reason}
		}
		return res.env, nil
	case <-ctx.Done():
		c.mu.Lock()
		delete(c.pending, env.ID)
		c.mu.Unlock()
		return nil, fmt.Errorf("wire: call %s: %w", typ, ctx.Err())
	}
}

// CallIdempotent is CallContext for requests that are safe to re-send
// (Ping, Renew): a call that dies with its connection, or cannot dial, is
// retried with jittered exponential backoff until the context — or the
// client's default timeout — expires, so a short server outage is
// invisible to the caller. A Busy shed is retried too, but only after the
// server's retry-after hint has elapsed (plus jittered backoff) — shed
// clients back off instead of hammering an overloaded server. Failures
// the server reports (RemoteError), encode failures, and a closed client
// are not retried. The caller owns the idempotency claim: a retried
// request may execute twice on the server.
func (c *Client) CallIdempotent(ctx context.Context, typ string, payload any) (*Envelope, error) {
	if c.timeout > 0 {
		if _, has := ctx.Deadline(); !has {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, c.timeout)
			defer cancel()
		}
	}
	// Without any deadline the loop needs its own bound; with one, the
	// context cuts the retries off.
	maxAttempts := math.MaxInt
	if _, has := ctx.Deadline(); !has {
		maxAttempts = 8
	}
	backoff := 5 * time.Millisecond
	const maxBackoff = 250 * time.Millisecond
	for attempt := 1; ; attempt++ {
		reply, err := c.CallContext(ctx, typ, payload)
		if err == nil || attempt >= maxAttempts {
			return reply, err
		}
		// Full jitter on every wait: synchronized heartbeaters must not
		// retry in lockstep (see jitter.go).
		var wait time.Duration
		var busy *BusyError
		switch {
		case errors.As(err, &busy):
			wait = busy.RetryAfter + fullJitter(backoff)
		case Retryable(err):
			wait = fullJitter(backoff)
		default:
			return reply, err
		}
		select {
		case <-ctx.Done():
			return nil, fmt.Errorf("wire: call %s: %w", typ, ctx.Err())
		case <-time.After(wait):
		}
		backoff = min(backoff*2, maxBackoff)
	}
}

// Retryable reports whether a call failure is a transport-level loss (the
// connection died or could not be established) that an idempotent request
// may safely retry immediately. A BusyError is deliberately NOT retryable:
// the server shed that request to survive overload, and an immediate
// retry re-applies the load it just rejected. CallIdempotent handles Busy
// separately, waiting out the server's retry-after hint first.
func Retryable(err error) bool {
	return errors.Is(err, ErrConnLost) || errors.Is(err, ErrDial)
}

// ensureConnLocked dials and negotiates if no connection is live, and
// starts the connection's reader. Caller holds c.mu.
func (c *Client) ensureConnLocked() error {
	if c.conn != nil {
		return nil
	}
	conn, framer, err := c.dialAndNegotiate()
	if err != nil {
		return err
	}
	c.installConnLocked(conn, framer)
	return nil
}

// negotiateTimeout bounds the handshake round trip on a fresh connection
// when the client has no tighter per-call timeout: dialing is the one
// moment the client blocks on a peer that has not yet proven it speaks
// the protocol, so a hung accept must not wedge Connect (and the mutex
// behind it) forever.
const negotiateTimeout = 10 * time.Second

// dialAndNegotiate opens a fresh connection and runs the codec handshake
// on it (one round trip). It holds no client locks, so the background
// reconnect loop can use it without blocking callers.
func (c *Client) dialAndNegotiate() (net.Conn, *Framer, error) {
	conn, err := c.dialFn()
	if err != nil {
		return nil, nil, fmt.Errorf("%w: %v", ErrDial, err)
	}
	framer := NewFramerStats(JSON, c.stats)
	if !c.noNegotiate {
		bound := negotiateTimeout
		if c.timeout > 0 && c.timeout < bound {
			bound = c.timeout
		}
		_ = conn.SetDeadline(time.Now().Add(bound)) // best effort: not every conn has deadlines
		chosen, err := negotiateClient(conn, c.codecs)
		if err != nil {
			_ = conn.Close()
			return nil, nil, fmt.Errorf("%w: negotiate: %v", ErrDial, err)
		}
		_ = conn.SetDeadline(time.Time{})
		framer = NewFramerStats(chosen, c.stats)
	}
	return conn, framer, nil
}

func (c *Client) installConnLocked(conn net.Conn, framer *Framer) {
	c.conn = conn
	c.framer = framer
	go c.readLoop(conn, framer)
}

// readLoop demultiplexes replies on one connection until it fails.
func (c *Client) readLoop(conn net.Conn, framer *Framer) {
	for {
		env, err := framer.ReadFrame(conn)
		if err != nil {
			c.connFailed(conn, err)
			return
		}
		c.mu.Lock()
		ch, ok := c.pending[env.ID]
		if ok {
			delete(c.pending, env.ID)
		}
		var st *ClientStream
		if !ok {
			st = c.streams[env.ID]
		}
		c.mu.Unlock()
		if ok {
			ch <- callResult{env: env} // buffered; single send per entry
			continue
		}
		if st != nil {
			// Stream frames deliver without deregistering the id; a consumer
			// that overflowed its buffer is dropped here so it never stalls
			// this loop (it resubscribes and re-baselines).
			if !st.deliver(env) {
				c.mu.Lock()
				if c.streams[env.ID] == st {
					delete(c.streams, env.ID)
				}
				c.mu.Unlock()
			}
		}
		// Unmatched ids are replies to abandoned (timed-out) calls: drop.
	}
}

// connFailed retires a broken connection, fails the calls in flight on it,
// and starts the proactive redial loop. The next call also redials on
// demand, whichever comes first.
func (c *Client) connFailed(conn net.Conn, err error) {
	c.mu.Lock()
	if c.conn == conn {
		c.conn = nil
		c.framer = nil
		c.failPendingLocked(fmt.Errorf("%w: %v", ErrConnLost, err))
		c.failStreamsLocked(fmt.Errorf("%w: %v", ErrConnLost, err))
		if !c.closed && !c.reconnecting {
			c.reconnecting = true
			go c.reconnectLoop()
		}
	}
	c.mu.Unlock()
	_ = conn.Close()
}

// reconnectLoop proactively redials a lost connection with jittered
// exponential backoff, so heartbeating clients regain a connection without
// waiting for their next call to pay the dial — and without the whole
// fleet redialing a restarted server in lockstep (each sleep is drawn
// uniformly from [0, backoff), see jitter.go). It stops as soon as a
// connection exists (its own or one a call-path dial installed) or the
// client closes.
func (c *Client) reconnectLoop() {
	backoff := 10 * time.Millisecond
	const maxBackoff = time.Second
	for {
		time.Sleep(fullJitter(backoff))
		c.mu.Lock()
		if c.closed || c.conn != nil {
			c.reconnecting = false
			c.mu.Unlock()
			return
		}
		c.mu.Unlock()
		conn, framer, err := c.dialAndNegotiate()
		if err == nil {
			// reconnecting must clear in the same critical section that
			// installs the connection: the new readLoop may fail
			// immediately, and its connFailed must see reconnecting=false
			// so it starts the next loop instead of assuming this one is
			// still alive.
			c.mu.Lock()
			stale := c.closed || c.conn != nil
			if !stale {
				c.installConnLocked(conn, framer)
			}
			c.reconnecting = false
			c.mu.Unlock()
			if stale {
				_ = conn.Close()
			}
			return
		}
		backoff = min(backoff*2, maxBackoff)
	}
}

func (c *Client) failPendingLocked(err error) {
	for id, ch := range c.pending {
		delete(c.pending, id)
		ch <- callResult{err: err}
	}
}
