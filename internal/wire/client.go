package wire

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// DialFunc opens the transport connection a Client multiplexes. The client
// invokes it lazily on first use and again after a connection failure, so
// reconnection policy lives in one place.
type DialFunc func() (net.Conn, error)

// ErrClosed is returned by calls issued against (or in flight on) a client
// that has been closed.
var ErrClosed = errors.New("wire: client closed")

// RemoteError is a failure the server reported through an error envelope.
// The connection itself is healthy; only this call failed.
type RemoteError struct {
	Message string
}

func (e *RemoteError) Error() string { return e.Message }

// Client multiplexes concurrent requests over one connection: every call
// writes a frame tagged with a fresh envelope id and parks on a private
// reply channel, while a single reader goroutine demultiplexes whatever
// reply arrives next to the call that owns its id. Replies may therefore
// return in any order, and N callers share one connection without waiting
// for each other's round trips.
//
// A failed connection fails every in-flight call; the next call redials
// through the DialFunc. Client is safe for concurrent use.
type Client struct {
	dialFn  DialFunc
	timeout time.Duration

	writeMu sync.Mutex // serializes frame writes on the live connection

	mu      sync.Mutex
	conn    net.Conn
	pending map[uint64]chan callResult
	nextID  uint64
	closed  bool
}

type callResult struct {
	env *Envelope
	err error
}

// NewClient builds a client over dial. timeout bounds each call that
// arrives without its own context deadline; zero means no bound.
func NewClient(dial DialFunc, timeout time.Duration) *Client {
	return &Client{
		dialFn:  dial,
		timeout: timeout,
		pending: make(map[uint64]chan callResult),
	}
}

// Connect ensures a live connection, dialing if necessary. Calls dial
// lazily anyway; Connect exists so constructors can surface dial errors
// immediately.
func (c *Client) Connect() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrClosed
	}
	return c.ensureConnLocked()
}

// Close fails every in-flight call and drops the connection. Subsequent
// calls return ErrClosed.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	conn := c.conn
	c.conn = nil
	c.failPendingLocked(ErrClosed)
	c.mu.Unlock()
	if conn != nil {
		return conn.Close()
	}
	return nil
}

// Call round-trips one request under the client's default timeout.
func (c *Client) Call(typ string, payload any) (*Envelope, error) {
	return c.CallContext(context.Background(), typ, payload)
}

// CallContext round-trips one request. A nil payload sends a bare
// envelope. The reply envelope is returned as-is unless it is an error
// envelope, which is decoded into a *RemoteError. Cancelling the context
// abandons the call (a late reply is discarded); it does not disturb other
// calls in flight on the same connection.
func (c *Client) CallContext(ctx context.Context, typ string, payload any) (*Envelope, error) {
	env := &Envelope{Type: typ}
	if payload != nil {
		built, err := NewEnvelope(typ, 0, payload)
		if err != nil {
			return nil, err
		}
		env = built
	}

	if c.timeout > 0 {
		if _, has := ctx.Deadline(); !has {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, c.timeout)
			defer cancel()
		}
	}

	// Register the call: id assignment, pending entry, and the connection
	// it will travel on are decided under one lock.
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClosed
	}
	if err := c.ensureConnLocked(); err != nil {
		c.mu.Unlock()
		return nil, err
	}
	c.nextID++
	env.ID = c.nextID
	ch := make(chan callResult, 1)
	c.pending[env.ID] = ch
	conn := c.conn
	c.mu.Unlock()

	c.writeMu.Lock()
	err := WriteFrame(conn, env)
	c.writeMu.Unlock()
	if err != nil {
		if errors.Is(err, ErrFrameTooLarge) {
			// Rejected before any bytes hit the wire: the connection is
			// fine, only this call fails.
			c.mu.Lock()
			delete(c.pending, env.ID)
			c.mu.Unlock()
			return nil, err
		}
		// Any other frame-write failure means the connection is broken:
		// tear it down (failing every call in flight on it, ourselves
		// included).
		c.connFailed(conn, err)
	}

	select {
	case res := <-ch:
		if res.err != nil {
			return nil, res.err
		}
		if res.env.Type == TypeError {
			var e ErrorReply
			if err := res.env.Decode(&e); err != nil {
				return nil, err
			}
			return nil, &RemoteError{Message: e.Message}
		}
		return res.env, nil
	case <-ctx.Done():
		c.mu.Lock()
		delete(c.pending, env.ID)
		c.mu.Unlock()
		return nil, fmt.Errorf("wire: call %s: %w", typ, ctx.Err())
	}
}

// ensureConnLocked dials if no connection is live and starts its reader.
func (c *Client) ensureConnLocked() error {
	if c.conn != nil {
		return nil
	}
	conn, err := c.dialFn()
	if err != nil {
		return fmt.Errorf("wire: dial: %w", err)
	}
	c.conn = conn
	go c.readLoop(conn)
	return nil
}

// readLoop demultiplexes replies on one connection until it fails.
func (c *Client) readLoop(conn net.Conn) {
	for {
		env, err := ReadFrame(conn)
		if err != nil {
			c.connFailed(conn, err)
			return
		}
		c.mu.Lock()
		ch, ok := c.pending[env.ID]
		if ok {
			delete(c.pending, env.ID)
		}
		c.mu.Unlock()
		if ok {
			ch <- callResult{env: env} // buffered; single send per entry
		}
		// Unmatched ids are replies to abandoned (timed-out) calls: drop.
	}
}

// connFailed retires a broken connection and fails the calls in flight on
// it. The next call redials.
func (c *Client) connFailed(conn net.Conn, err error) {
	c.mu.Lock()
	if c.conn == conn {
		c.conn = nil
		c.failPendingLocked(fmt.Errorf("wire: connection lost: %w", err))
	}
	c.mu.Unlock()
	_ = conn.Close()
}

func (c *Client) failPendingLocked(err error) {
	for id, ch := range c.pending {
		delete(c.pending, id)
		ch <- callResult{err: err}
	}
}
