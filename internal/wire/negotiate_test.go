package wire

import (
	"flag"
	"fmt"
	"net"
	"os"
	"sync"
	"testing"
	"time"
)

// -wire-default-codec forces the package-default negotiation preference
// for a whole test run, so CI can run the entire wire suite once per
// codec:
//
//	go test -race ./internal/wire -wire-default-codec=binary
//	go test -race ./internal/wire -wire-default-codec=json
var defaultCodecFlag = flag.String("wire-default-codec", "",
	"force the default codec preference for this test run: json, binary, binary2, or binary2+flate")

func TestMain(m *testing.M) {
	flag.Parse()
	switch *defaultCodecFlag {
	case "":
	case "json":
		defaultCodecs = []Codec{JSON}
	case "binary":
		defaultCodecs = []Codec{Binary, JSON}
	case "binary2":
		defaultCodecs = []Codec{Binary2, Binary, JSON}
	case "binary2+flate":
		comp, err := Compressed(Binary2, AlgoFlate)
		if err != nil {
			fmt.Fprintf(os.Stderr, "building binary2+flate: %v\n", err)
			os.Exit(2)
		}
		defaultCodecs = []Codec{comp, Binary2, Binary, JSON}
	default:
		fmt.Fprintf(os.Stderr, "unknown -wire-default-codec %q\n", *defaultCodecFlag)
		os.Exit(2)
	}
	os.Exit(m.Run())
}

// startEchoServerOpts is startEchoServer with explicit serve options.
func startEchoServerOpts(t *testing.T, opts ServeOptions) (addr string, stop func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	var mu sync.Mutex
	var conns []net.Conn
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			mu.Lock()
			conns = append(conns, conn)
			mu.Unlock()
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer conn.Close()
				ServeConnOpts(conn, opts, func(env *Envelope) *Envelope {
					var p echoPayload
					if err := env.Decode(&p); err != nil {
						return ErrorEnvelope(env.ID, err)
					}
					if p.Sleep > 0 {
						time.Sleep(time.Duration(p.Sleep) * time.Millisecond)
					}
					reply, _ := NewEnvelope("echo", env.ID, p)
					return reply
				})
			}()
		}
	}()
	return ln.Addr().String(), func() {
		_ = ln.Close()
		mu.Lock()
		for _, c := range conns {
			_ = c.Close()
		}
		mu.Unlock()
		wg.Wait()
	}
}

// echoDialer builds a client dial function for an echo server address.
func echoDialer(addr string) DialFunc {
	return func() (net.Conn, error) { return net.Dial("tcp", addr) }
}

// checkEcho round-trips one uniquely-tokened call.
func checkEcho(t *testing.T, c *Client, token string) {
	t.Helper()
	reply, err := c.Call("echo", echoPayload{Token: token})
	if err != nil {
		t.Fatalf("%s: %v", token, err)
	}
	var p echoPayload
	if err := reply.Decode(&p); err != nil {
		t.Fatalf("%s: %v", token, err)
	}
	if p.Token != token {
		t.Fatalf("token = %q, want %q", p.Token, token)
	}
}

// TestNegotiateBinary: both ends prefer binary, the connection lands on
// binary, traffic flows.
func TestNegotiateBinary(t *testing.T) {
	addr, stop := startEchoServerOpts(t, ServeOptions{Window: 4, Codecs: []Codec{Binary, JSON}})
	defer stop()
	c := NewClientOpts(echoDialer(addr), ClientOptions{Timeout: 5 * time.Second, Codecs: []Codec{Binary, JSON}})
	defer c.Close()
	checkEcho(t, c, "hello-binary")
	if got := c.CodecName(); got != "binary" {
		t.Errorf("negotiated %q, want binary", got)
	}
}

// TestNegotiateJSONOnlyServer: a server offering only JSON pulls a
// binary-preferring client down to the floor.
func TestNegotiateJSONOnlyServer(t *testing.T) {
	addr, stop := startEchoServerOpts(t, ServeOptions{Window: 4, Codecs: []Codec{JSON}})
	defer stop()
	c := NewClientOpts(echoDialer(addr), ClientOptions{Timeout: 5 * time.Second, Codecs: []Codec{Binary, JSON}})
	defer c.Close()
	checkEcho(t, c, "hello-floor")
	if got := c.CodecName(); got != "json" {
		t.Errorf("negotiated %q, want json", got)
	}
}

// TestNegotiateJSONOnlyClient: a JSON-only client gets JSON from a
// binary-preferring server.
func TestNegotiateJSONOnlyClient(t *testing.T) {
	addr, stop := startEchoServerOpts(t, ServeOptions{Window: 4, Codecs: []Codec{Binary, JSON}})
	defer stop()
	c := NewClientOpts(echoDialer(addr), ClientOptions{Timeout: 5 * time.Second, Codecs: []Codec{JSON}})
	defer c.Close()
	checkEcho(t, c, "hello-json-client")
	if got := c.CodecName(); got != "json" {
		t.Errorf("negotiated %q, want json", got)
	}
}

// TestFallbackOldServer is the mixed-fleet acceptance case: a negotiating
// client against a server that predates codecs (simulated by disabling
// negotiation, so the hello bounces as an unknown-type error). The client
// must settle on JSON and every concurrent call must still correlate —
// this runs under -race in CI.
func TestFallbackOldServer(t *testing.T) {
	addr, stop := startEchoServerOpts(t, ServeOptions{Window: 8, DisableNegotiation: true})
	defer stop()
	c := NewClientOpts(echoDialer(addr), ClientOptions{Timeout: 5 * time.Second, Codecs: []Codec{Binary, JSON}})
	defer c.Close()

	checkEcho(t, c, "fallback-first")
	if got := c.CodecName(); got != "json" {
		t.Fatalf("negotiated %q against an old server, want json", got)
	}
	const callers, calls = 8, 20
	var wg sync.WaitGroup
	for g := 0; g < callers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < calls; i++ {
				token := fmt.Sprintf("old-server-%d-%d", g, i)
				reply, err := c.Call("echo", echoPayload{Token: token})
				if err != nil {
					t.Errorf("%s: %v", token, err)
					return
				}
				var p echoPayload
				if err := reply.Decode(&p); err != nil {
					t.Errorf("%s: %v", token, err)
					return
				}
				if p.Token != token {
					t.Errorf("got %q, want %q", p.Token, token)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestFallbackOldClient is the converse: a client that predates codecs
// (no hello, plain JSON) against a negotiating server. Its first frame is
// a regular request, which must be served, leaving the connection on
// JSON.
func TestFallbackOldClient(t *testing.T) {
	addr, stop := startEchoServerOpts(t, ServeOptions{Window: 4, Codecs: []Codec{Binary, JSON}})
	defer stop()
	c := NewClientOpts(echoDialer(addr), ClientOptions{Timeout: 5 * time.Second, DisableNegotiation: true})
	defer c.Close()
	for i := 0; i < 5; i++ {
		checkEcho(t, c, fmt.Sprintf("old-client-%d", i))
	}
	if got := c.CodecName(); got != "json" {
		t.Errorf("old client speaks %q, want json", got)
	}
}

// TestNegotiationSurvivesReconnect: the handshake reruns on every redial,
// so a client that lost its binary connection negotiates binary again on
// the next one.
func TestNegotiationSurvivesReconnect(t *testing.T) {
	addr, stop := startEchoServerOpts(t, ServeOptions{Window: 4, Codecs: []Codec{Binary, JSON}})
	c := NewClientOpts(echoDialer(addr), ClientOptions{Timeout: 2 * time.Second, Codecs: []Codec{Binary, JSON}})
	defer c.Close()
	checkEcho(t, c, "before-restart")
	stop()

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatalf("relisten %s: %v", addr, err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				ServeConnOpts(conn, ServeOptions{Window: 4, Codecs: []Codec{Binary, JSON}}, func(env *Envelope) *Envelope {
					var p echoPayload
					_ = env.Decode(&p)
					reply, _ := NewEnvelope("echo", env.ID, p)
					return reply
				})
			}()
		}
	}()

	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := c.Call("echo", echoPayload{Token: "after"}); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("client never reconnected")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if got := c.CodecName(); got != "binary" {
		t.Errorf("reconnected on %q, want binary", got)
	}
}

// TestOversizedCallIsolationPerCodec re-proves the oversized-call
// isolation property on a negotiated connection for each codec: the
// rejection precedes the wire, so sibling calls and the connection
// survive.
func TestOversizedCallIsolationPerCodec(t *testing.T) {
	for _, name := range []string{"json", "binary", "binary2"} {
		t.Run(name, func(t *testing.T) {
			codec, err := CodecByName(name)
			if err != nil {
				t.Fatal(err)
			}
			addr, stop := startEchoServerOpts(t, ServeOptions{Window: 4, Codecs: []Codec{codec}})
			defer stop()
			c := NewClientOpts(echoDialer(addr), ClientOptions{Timeout: 5 * time.Second, Codecs: []Codec{codec}})
			defer c.Close()

			checkEcho(t, c, "warm")
			if got := c.CodecName(); got != name {
				t.Fatalf("negotiated %q, want %q", got, name)
			}
			big := make([]byte, MaxFrame+1)
			for i := range big {
				big[i] = 'x'
			}
			_, err = c.Call("echo", echoPayload{Token: string(big)})
			if err == nil || !preWire(err) {
				t.Fatalf("oversized call err = %v, want a pre-wire rejection", err)
			}
			checkEcho(t, c, "after")
		})
	}
}
