package wire

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"actyp/internal/metrics"
)

// startOverloadServer serves connections with an echo handler that also
// answers pings, under the given overload policy (nil = FIFO path).
func startOverloadServer(t *testing.T, window int, policy *OverloadPolicy) (addr string, stop func()) {
	t.Helper()
	return startOverloadServerOpts(t, ServeOptions{Window: window, Overload: policy})
}

// startOverloadServerOpts is the general form for tests that also need
// to pin the server's codec offer (interop tests must not inherit the
// suite-wide -wire-default-codec override).
func startOverloadServerOpts(t *testing.T, opts ServeOptions) (addr string, stop func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	var mu sync.Mutex
	var conns []net.Conn
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			mu.Lock()
			conns = append(conns, conn)
			mu.Unlock()
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer conn.Close()
				ServeConnOpts(conn, opts, func(env *Envelope) *Envelope {
					if env.Type == TypePing {
						return &Envelope{Type: TypePing, ID: env.ID}
					}
					var p echoPayload
					if err := env.Decode(&p); err != nil {
						return ErrorEnvelope(env.ID, err)
					}
					if p.Sleep > 0 {
						time.Sleep(time.Duration(p.Sleep) * time.Millisecond)
					}
					reply, _ := NewEnvelope("echo", env.ID, p)
					return reply
				})
			}()
		}
	}()
	return ln.Addr().String(), func() {
		_ = ln.Close()
		mu.Lock()
		for _, c := range conns {
			_ = c.Close()
		}
		mu.Unlock()
		wg.Wait()
	}
}

// TestLaneOrdering drives the lane queues directly: queued control frames
// always pop first, and with both data lanes backlogged the lease lane
// gets its weighted share.
func TestLaneOrdering(t *testing.T) {
	policy := &OverloadPolicy{LeaseWeight: 2, BulkWeight: 1, QueueCap: 64}
	lanes := NewLanes(policy, func(env *Envelope, _ any, busy *BusyReply) {
		t.Errorf("unexpected shed of %s: %s", env.Type, busy.Reason)
	})
	defer lanes.Close()
	for i := 0; i < 6; i++ {
		if !lanes.Offer(&Envelope{Type: TypeQuery, ID: uint64(i)}, nil) {
			t.Fatalf("bulk offer %d rejected", i)
		}
	}
	for i := 0; i < 6; i++ {
		if !lanes.Offer(&Envelope{Type: TypeSpawnPool, ID: uint64(10 + i)}, nil) {
			t.Fatalf("lease offer %d rejected", i)
		}
	}
	for i := 0; i < 2; i++ {
		if !lanes.Offer(&Envelope{Type: TypePing, ID: uint64(20 + i)}, nil) {
			t.Fatalf("control offer %d rejected", i)
		}
	}
	var order []Lane
	for i := 0; i < 14; i++ {
		_, _, lane, ok := lanes.Pop()
		if !ok {
			t.Fatalf("pop %d: lanes closed early", i)
		}
		order = append(order, lane)
	}
	if order[0] != LaneControl || order[1] != LaneControl {
		t.Fatalf("control frames not served first: %v", order)
	}
	// With lease weight 2 and bulk weight 1, the backlog drains in
	// repeating lease,lease,bulk rounds.
	want := []Lane{LaneLease, LaneLease, LaneBulk, LaneLease, LaneLease, LaneBulk, LaneLease, LaneLease, LaneBulk, LaneBulk, LaneBulk, LaneBulk}
	for i, lane := range order[2:] {
		if lane != want[i] {
			t.Fatalf("data lane order = %v, want %v", order[2:], want)
		}
	}
}

// TestControlNotStarvedUnderBulkFlood is the starvation regression: with
// every worker occupied by slow bulk queries and a deep bulk backlog,
// pings on the same connection must still complete promptly because the
// dispatcher serves the control lane first. The bound is generous — the
// point is "milliseconds, not the whole backlog".
func TestControlNotStarvedUnderBulkFlood(t *testing.T) {
	stats := metrics.NewOverloadStats()
	addr, stop := startOverloadServer(t, 2, &OverloadPolicy{QueueCap: 32, Stats: stats})
	defer stop()
	c := NewClientOpts(echoDialer(addr), ClientOptions{Timeout: 10 * time.Second})
	defer c.Close()

	floodCtx := make(chan struct{})
	var flood sync.WaitGroup
	for i := 0; i < 8; i++ {
		flood.Add(1)
		go func(i int) {
			defer flood.Done()
			for n := 0; ; n++ {
				select {
				case <-floodCtx:
					return
				default:
				}
				// Errors are expected here: bulk is exactly what overload
				// control sheds.
				_, _ = c.Call("echo", echoPayload{Token: fmt.Sprintf("flood-%d-%d", i, n), Sleep: 20})
			}
		}(i)
	}
	time.Sleep(50 * time.Millisecond) // let the flood saturate the window

	for i := 0; i < 10; i++ {
		start := time.Now()
		if _, err := c.Call(TypePing, nil); err != nil {
			t.Fatalf("ping %d under flood: %v", i, err)
		}
		if d := time.Since(start); d > 2*time.Second {
			t.Fatalf("ping %d took %v under bulk flood; control lane starved", i, d)
		}
	}
	close(floodCtx)
	flood.Wait()
	snap := stats.Snapshot()
	if snap[metrics.ClassControl].Done < 10 {
		t.Errorf("control done = %d, want >= 10", snap[metrics.ClassControl].Done)
	}
	if snap[metrics.ClassBulk].Admitted == 0 {
		t.Errorf("no bulk was admitted; flood never reached the lanes")
	}
}

// TestExpiredDeadlineIsShed sends a raw frame whose envelope deadline has
// already passed: the server must answer Busy without dispatching it.
func TestExpiredDeadlineIsShed(t *testing.T) {
	addr, stop := startEchoServerOpts(t, ServeOptions{Window: 2, Overload: &OverloadPolicy{}})
	defer stop()

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	framer := NewFramer(JSON) // first frame is not a hello, so the connection stays on JSON
	env := &Envelope{Type: "echo", ID: 7, Msg: echoPayload{Token: "late"}}
	env.SetDeadline(time.Now().Add(-time.Second))
	if err := framer.WriteFrame(conn, env); err != nil {
		t.Fatal(err)
	}
	reply, err := framer.ReadFrame(conn)
	if err != nil {
		t.Fatal(err)
	}
	if reply.Type != TypeBusy || reply.ID != 7 {
		t.Fatalf("got %s id=%d, want %s id=7", reply.Type, reply.ID, TypeBusy)
	}
	var busy BusyReply
	if err := reply.Decode(&busy); err != nil {
		t.Fatal(err)
	}
	if busy.Reason != "deadline expired before dispatch" {
		t.Errorf("reason = %q", busy.Reason)
	}

	// The connection survives the shed: a fresh request still round-trips.
	ok := &Envelope{Type: "echo", ID: 8, Msg: echoPayload{Token: "fresh"}}
	if err := framer.WriteFrame(conn, ok); err != nil {
		t.Fatal(err)
	}
	reply, err = framer.ReadFrame(conn)
	if err != nil {
		t.Fatal(err)
	}
	if reply.Type != "echo" || reply.ID != 8 {
		t.Fatalf("after shed got %s id=%d, want echo id=8", reply.Type, reply.ID)
	}
}

// TestBusySemantics pins the retry contract: Busy is not Retryable (a
// plain call surfaces it), and CallIdempotent honours the retry-after
// hint instead of hammering the server.
func TestBusySemantics(t *testing.T) {
	if Retryable(&BusyError{RetryAfter: time.Second}) {
		t.Fatal("BusyError must not be Retryable")
	}

	const retryAfter = 60 * time.Millisecond
	var rejected atomic.Int64
	admit := func(env *Envelope) (bool, time.Duration) {
		if rejected.CompareAndSwap(0, 1) {
			return false, retryAfter
		}
		return true, 0
	}
	addr, stop := startOverloadServer(t, 2, &OverloadPolicy{Admit: admit})
	defer stop()

	c := NewClientOpts(echoDialer(addr), ClientOptions{Timeout: 5 * time.Second})
	defer c.Close()

	// A plain call gets the Busy verbatim, with the hint attached.
	_, err := c.Call("echo", echoPayload{Token: "shed-me"})
	var busy *BusyError
	if !errors.As(err, &busy) {
		t.Fatalf("err = %v, want *BusyError", err)
	}
	if busy.RetryAfter != retryAfter {
		t.Errorf("RetryAfter = %v, want %v", busy.RetryAfter, retryAfter)
	}

	// An idempotent call rides through the shed, but only after waiting
	// out the server's hint. It must be a bulk-type request — control
	// frames never reach the admission gate.
	rejected.Store(0)
	start := time.Now()
	if _, err := c.CallIdempotent(context.Background(), "echo", echoPayload{Token: "retry-me"}); err != nil {
		t.Fatalf("idempotent call through Busy: %v", err)
	}
	if elapsed := time.Since(start); elapsed < retryAfter {
		t.Errorf("idempotent retry came back in %v, before the %v retry-after hint", elapsed, retryAfter)
	}
}

// TestOverloadOldPeerInterop pins the compatibility story: a client
// pinned to the v1 binary codec (which carries no From or Deadline)
// works against an overloaded server — its deadlines simply do not
// propagate — and still decodes Busy replies; and a client preferring
// binary2 degrades to plain binary against a server that does not offer
// it.
func TestOverloadOldPeerInterop(t *testing.T) {
	var rejectAll atomic.Bool
	admit := func(env *Envelope) (bool, time.Duration) {
		if env.Deadline != 0 {
			t.Errorf("deadline %d leaked through the v1 binary codec", env.Deadline)
		}
		if rejectAll.Load() {
			return false, 20 * time.Millisecond
		}
		return true, 0
	}
	// Pin the server's codec offer: this test is about cross-version
	// negotiation, so it must not inherit the -wire-default-codec
	// suite override (a json-only server would never land on binary).
	addr, stop := startOverloadServerOpts(t, ServeOptions{
		Window:   2,
		Overload: &OverloadPolicy{Admit: admit},
		Codecs:   []Codec{Binary2, Binary, JSON},
	})
	defer stop()

	old := NewClientOpts(echoDialer(addr), ClientOptions{
		Timeout: 2 * time.Second,
		Codecs:  []Codec{Binary, JSON},
		From:    "dropped-on-the-floor",
	})
	defer old.Close()
	checkEcho(t, old, "old-codec-under-overload")
	if got := old.CodecName(); got != "binary" {
		t.Fatalf("negotiated %q, want binary", got)
	}
	rejectAll.Store(true)
	_, err := old.Call("echo", echoPayload{Token: "shed-old"})
	var busy *BusyError
	if !errors.As(err, &busy) {
		t.Fatalf("old-codec client err = %v, want *BusyError", err)
	}
	rejectAll.Store(false)

	// New client, old server: binary2 is not offered, so negotiation
	// lands on plain binary and traffic flows.
	oldAddr, oldStop := startEchoServerOpts(t, ServeOptions{Window: 2, Codecs: []Codec{Binary, JSON}})
	defer oldStop()
	fresh := NewClientOpts(echoDialer(oldAddr), ClientOptions{
		Timeout: 2 * time.Second,
		Codecs:  []Codec{Binary2, Binary, JSON},
	})
	defer fresh.Close()
	checkEcho(t, fresh, "new-client-old-server")
	if got := fresh.CodecName(); got != "binary" {
		t.Fatalf("negotiated %q, want binary fallback", got)
	}
}

// TestOverloadStress hammers one overloaded connection from many
// goroutines mixing control and bulk, with admission randomly rejecting
// and a tiny queue forcing sheds, under -race: the shutdown ordering and
// the lane bookkeeping must hold up.
func TestOverloadStress(t *testing.T) {
	var flip atomic.Uint64
	admit := func(env *Envelope) (bool, time.Duration) {
		if flip.Add(1)%4 == 0 {
			return false, time.Millisecond
		}
		return true, 0
	}
	stats := metrics.NewOverloadStats()
	addr, stop := startOverloadServer(t, 4, &OverloadPolicy{QueueCap: 2, Admit: admit, Stats: stats})
	c := NewClientOpts(echoDialer(addr), ClientOptions{Timeout: 10 * time.Second})

	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				if g%2 == 0 {
					if _, err := c.CallIdempotent(context.Background(), TypePing, nil); err != nil {
						t.Errorf("ping: %v", err)
						return
					}
				} else {
					// Bulk may be shed or expire; only transport breakage is
					// a failure.
					_, err := c.Call("echo", echoPayload{Token: fmt.Sprintf("s-%d-%d", g, i), Sleep: 1})
					var busy *BusyError
					if err != nil && !errors.As(err, &busy) {
						t.Errorf("bulk: %v", err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	c.Close()
	stop() // exercises Close/drain while counters settle
	snap := stats.Snapshot()
	if snap[metrics.ClassControl].Done == 0 || snap[metrics.ClassBulk].Done == 0 {
		t.Errorf("goodput counters empty: %+v", snap)
	}
	for class, counts := range snap {
		if counts.Depth != 0 {
			t.Errorf("lane %s depth gauge = %d after drain, want 0", metrics.ClassNames[class], counts.Depth)
		}
	}
}
