package wire

import (
	"net"
	"sync"
)

// DefaultWindow is the per-connection in-flight window used when a server
// is not configured with one: how many decoded requests may be executing
// (or waiting to be written back) concurrently on a single connection.
const DefaultWindow = 32

// Handler processes one decoded request envelope and returns the reply
// envelope; nil means the request produces no reply.
type Handler func(*Envelope) *Envelope

// ServeConn multiplexes one connection: a reader loop decodes frames and
// hands each to a pool of `window` workers, and a single writer goroutine
// drains the reply channel, so replies interleave out of order (the
// envelope id correlates them) and a slow request never blocks service of
// the requests queued behind it.
//
// Backpressure is structural: when all workers are busy the reader blocks
// handing off the next frame, so at most `window` requests execute
// concurrently and at most `window` replies queue for the writer; beyond
// that, frames accumulate in the kernel socket buffer and TCP flow control
// pushes back on the client.
//
// ServeConn returns when the connection fails or the peer closes it, after
// all in-flight handlers finish; the returned error is the terminal read
// or write failure (io.EOF for a clean peer close). It does not close
// conn; the caller owns its lifecycle.
func ServeConn(conn net.Conn, window int, handle Handler) error {
	if window < 1 {
		window = 1
	}
	work := make(chan *Envelope)
	replies := make(chan *Envelope, window)
	var workers sync.WaitGroup
	spawned := 0
	worker := func() {
		defer workers.Done()
		for env := range work {
			if reply := handle(env); reply != nil {
				replies <- reply
			}
		}
	}
	// dispatch hands one frame to an idle worker, growing the pool on
	// demand up to the window: a mostly-idle connection costs one parked
	// goroutine, not `window` of them, with identical semantics.
	dispatch := func(env *Envelope) {
		select {
		case work <- env:
			return
		default:
		}
		if spawned < window {
			spawned++
			workers.Add(1)
			go worker()
		}
		work <- env // blocks only when all `window` workers are busy
	}
	writerDone := make(chan struct{})
	var writeErr error
	go func() {
		defer close(writerDone)
		for reply := range replies {
			if err := WriteFrame(conn, reply); err != nil {
				// The write side failed: close the connection so the
				// reader unblocks, then keep draining so no worker ever
				// blocks on the reply channel.
				writeErr = err
				_ = conn.Close()
				for range replies {
				}
				return
			}
		}
	}()
	var readErr error
	for {
		env, err := ReadFrame(conn)
		if err != nil {
			readErr = err // peer went away or sent garbage
			break
		}
		dispatch(env)
	}
	close(work)
	workers.Wait()
	close(replies)
	<-writerDone
	if writeErr != nil {
		return writeErr
	}
	return readErr
}

// ErrorEnvelope wraps a failure in an error-reply envelope correlated to
// the failed request. A payload marshal failure degrades to a bare error
// envelope rather than silencing the reply.
func ErrorEnvelope(id uint64, err error) *Envelope {
	env, marshalErr := NewEnvelope(TypeError, id, ErrorReply{Message: err.Error()})
	if marshalErr != nil {
		return &Envelope{Type: TypeError, ID: id}
	}
	return env
}
