package wire

import (
	"errors"
	"net"
	"sync"

	"actyp/internal/metrics"
)

// DefaultWindow is the per-connection in-flight window used when a server
// is not configured with one: how many decoded requests may be executing
// (or waiting to be written back) concurrently on a single connection.
const DefaultWindow = 32

// Handler processes one decoded request envelope and returns the reply
// envelope; nil means the request produces no reply.
type Handler func(*Envelope) *Envelope

// ServeOptions configures one connection's server side.
type ServeOptions struct {
	// Window is the in-flight request window; values below 1 serialize
	// the connection (the pre-multiplexing behaviour).
	Window int
	// Codecs is the negotiation preference, best first (nil means
	// DefaultCodecs). Offering only JSON pins every connection to JSON.
	Codecs []Codec
	// DisableNegotiation serves plain JSON and dispatches hellos to the
	// handler like any other request — exactly how a pre-codec server
	// behaves. Tests use it to prove new clients fall back cleanly.
	DisableNegotiation bool
	// Overload enables the overload-control dispatch path: decoded
	// requests route through priority lanes (control > lease > bulk)
	// with admission and deadline-aware shedding instead of the single
	// FIFO. Nil keeps the original FIFO behaviour. See OverloadPolicy.
	Overload *OverloadPolicy
	// Streams maps envelope types to long-lived subscription handlers
	// (watch). A frame whose type is a key here bypasses the worker pool:
	// the reader registers the subscription and spawns the handler in its
	// own goroutine, which pushes frames through the connection's writer
	// until the peer cancels or the connection tears down. Nil serves no
	// streams; unknown types still reach the regular handler (which
	// answers with an error reply — the floor old peers rely on).
	Streams map[string]StreamHandler
	// Stats, when set, accounts every frame this connection reads and
	// writes (bytes, frames, compressed-vs-raw) under its codec's name.
	Stats *metrics.WireStats
	// Logf receives rare serve-side diagnostics (a negative Window being
	// clamped); nil discards them.
	Logf func(format string, args ...any)
}

// ServeConn multiplexes one connection with the default codec preference;
// see ServeConnOpts.
func ServeConn(conn net.Conn, window int, handle Handler) error {
	return ServeConnOpts(conn, ServeOptions{Window: window}, handle)
}

// outbound is one frame queued for the writer. switchTo, when set, is the
// negotiated codec: the writer switches to it before encoding this frame
// (the hello-ack itself travels in the chosen codec).
type outbound struct {
	env      *Envelope
	switchTo Codec
}

// workItem is one request handed to a worker; lane is meaningful only on
// the overload path (goodput accounting).
type workItem struct {
	env  *Envelope
	lane Lane
}

// ServeConnOpts multiplexes one connection: a reader loop decodes frames
// and hands each to a pool of `window` workers, and a single writer
// goroutine drains the reply channel, so replies interleave out of order
// (the envelope id correlates them) and a slow request never blocks
// service of the requests queued behind it.
//
// If the first frame is a hello, the server answers with the best mutual
// codec and both directions switch to it; any other first frame leaves the
// connection on JSON, which is how pre-codec clients keep working.
//
// Backpressure is structural: when all workers are busy the reader blocks
// handing off the next frame, so at most `window` requests execute
// concurrently and at most `window` replies queue for the writer; beyond
// that, frames accumulate in the kernel socket buffer and TCP flow control
// pushes back on the client.
//
// ServeConnOpts returns when the connection fails or the peer closes it,
// after all in-flight handlers finish; the returned error is the terminal
// read or write failure (io.EOF for a clean peer close). It does not close
// conn; the caller owns its lifecycle.
//
// With Overload set, the reader feeds per-lane queues instead of the
// FIFO: a dispatcher goroutine pops them strict-control-first (then
// weighted between lease and bulk) and hands to the same worker pool, so
// a saturated window always serves control frames next; over-limit,
// queue-full, and expired requests are answered with a cheap Busy reply
// from the read side without ever occupying a worker.
func ServeConnOpts(conn net.Conn, opts ServeOptions, handle Handler) error {
	window := opts.Window
	if window < 1 {
		if window < 0 && opts.Logf != nil {
			opts.Logf("wire: connection window %d clamped to 1 (serialized dispatch)", window)
		}
		window = 1
	}
	codecs := opts.Codecs
	if codecs == nil {
		codecs = DefaultCodecs()
	}
	work := make(chan workItem)
	replies := make(chan outbound, window)
	var lanes *Lanes
	if opts.Overload != nil {
		lanes = NewLanes(opts.Overload, func(env *Envelope, _ any, busy *BusyReply) {
			replies <- outbound{env: BusyEnvelope(env.ID, busy)}
		})
	}
	var workers sync.WaitGroup
	spawned := 0
	worker := func() {
		defer workers.Done()
		for item := range work {
			if reply := handle(item.env); reply != nil {
				replies <- outbound{env: reply}
			}
			if lanes != nil {
				lanes.Done(item.lane)
			}
		}
	}
	// dispatch hands one frame to an idle worker, growing the pool on
	// demand up to the window: a mostly-idle connection costs one parked
	// goroutine, not `window` of them, with identical semantics.
	dispatch := func(item workItem) {
		select {
		case work <- item:
			return
		default:
		}
		if spawned < window {
			spawned++
			workers.Add(1)
			go worker()
		}
		work <- item // blocks only when all `window` workers are busy
	}
	// enqueue routes one decoded request toward the workers: straight to
	// dispatch on the FIFO path, through the lane queues when overload
	// control is on (the dispatcher below moves them to the workers).
	enqueue := func(env *Envelope) {
		if lanes != nil {
			lanes.Offer(env, nil)
			return
		}
		dispatch(workItem{env: env})
	}
	// Subscription frames route around the worker pool entirely: a watch
	// lives as long as the connection, so parking it on a worker would
	// permanently burn a slot of the window.
	var streams serverStreams
	handleStream := func(env *Envelope) bool {
		if env.Type == TypeStreamCancel {
			streams.cancelID(env.ID)
			return true
		}
		h, ok := opts.Streams[env.Type]
		if !ok {
			return false
		}
		if !streams.start(env, h, replies) {
			replies <- outbound{env: ErrorEnvelope(env.ID, errors.New("wire: duplicate stream id"))}
		}
		return true
	}
	dispatcherDone := make(chan struct{})
	if lanes != nil {
		// The dispatcher serializes lane picks; `dispatch` itself is not
		// safe for concurrent use, and priority is decided at pop time.
		go func() {
			defer close(dispatcherDone)
			for {
				env, _, lane, ok := lanes.Pop()
				if !ok {
					return
				}
				dispatch(workItem{env: env, lane: lane})
			}
		}()
	} else {
		close(dispatcherDone)
	}
	writerDone := make(chan struct{})
	var writeErr error
	go func() {
		defer close(writerDone)
		framer := NewFramerStats(JSON, opts.Stats)
		for out := range replies {
			if out.switchTo != nil {
				framer = NewFramerStats(out.switchTo, opts.Stats)
			}
			err := framer.WriteFrame(conn, out.env)
			if err != nil && preWire(err) && out.env.Type != TypeError {
				// The reply failed to encode before any byte hit the wire:
				// the connection is healthy, so degrade to an error reply
				// for the same id instead of losing the correlation.
				err = framer.WriteFrame(conn, ErrorEnvelope(out.env.ID, err))
			}
			if err != nil && !preWire(err) {
				// The write side failed: close the connection so the
				// reader unblocks, then keep draining so no worker ever
				// blocks on the reply channel.
				writeErr = err
				_ = conn.Close()
				for range replies {
				}
				return
			}
		}
	}()
	var readErr error
	framer := NewFramerStats(JSON, opts.Stats)
	first := true
	for {
		env, err := framer.ReadFrame(conn)
		if err != nil {
			readErr = err // peer went away or sent garbage
			break
		}
		if first {
			first = false
			if !opts.DisableNegotiation && env.Type == TypeHello {
				chosen := JSON
				var h Hello
				if env.Decode(&h) == nil {
					chosen = pickCodec(codecs, h.Codecs)
				}
				// The ack is queued before any request is dispatched, so it
				// is necessarily the first frame the writer sends.
				hasFirst := h.First != nil && h.First.Type != ""
				ack := &Envelope{Type: TypeHelloAck, ID: env.ID, Msg: HelloAck{Codec: chosen.Name(), First: hasFirst}}
				replies <- outbound{env: ack, switchTo: chosen}
				framer = NewFramerStats(chosen, opts.Stats)
				if hasFirst {
					// The piggybacked first request dispatches like any
					// other frame; its reply (in the chosen codec) follows
					// the ack through the writer.
					piggy := &Envelope{Type: h.First.Type, ID: h.First.ID, Payload: h.First.Payload}
					piggy.codec = JSON
					enqueue(piggy)
				}
				continue
			}
		}
		if handleStream(env) {
			continue
		}
		enqueue(env)
	}
	if lanes != nil {
		// Drain: Pop keeps returning what was queued before the close,
		// then the dispatcher closes nothing further and exits.
		lanes.Close()
	}
	<-dispatcherDone
	close(work)
	workers.Wait()
	// Stream handlers push through `replies` too, so they must all be
	// stopped and gone before the channel may close. Their Sends select on
	// the stream's done channel, so cancelling never deadlocks against a
	// writer that already failed (it drains until the close).
	streams.close()
	close(replies)
	<-writerDone
	if writeErr != nil {
		return writeErr
	}
	return readErr
}

// preWire reports whether a write failure happened before any byte reached
// the connection (encode failures, oversized frames): the connection is
// still healthy and only the one message is lost.
func preWire(err error) bool {
	return errors.Is(err, ErrEncode) || errors.Is(err, ErrFrameTooLarge)
}

// ErrorEnvelope wraps a failure in an error-reply envelope correlated to
// the failed request.
func ErrorEnvelope(id uint64, err error) *Envelope {
	return &Envelope{Type: TypeError, ID: id, Msg: ErrorReply{Message: err.Error()}}
}
