package wire

import (
	"context"
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// restartableEchoServer serves echo traffic and can be stopped and
// restarted on the same address, simulating a service restart under a
// heartbeating client.
type restartableEchoServer struct {
	t    *testing.T
	addr string

	mu    sync.Mutex
	ln    net.Listener
	conns []net.Conn
	wg    sync.WaitGroup

	served atomic.Int64 // echo requests handled across all incarnations
	fails  atomic.Int64 // requests answered with an error envelope
	failN  atomic.Int64 // while positive, handlers fail and decrement
}

func newRestartableEchoServer(t *testing.T) *restartableEchoServer {
	t.Helper()
	s := &restartableEchoServer{t: t}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s.addr = ln.Addr().String()
	s.start(ln)
	return s
}

func (s *restartableEchoServer) start(ln net.Listener) {
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			s.mu.Lock()
			s.conns = append(s.conns, conn)
			s.mu.Unlock()
			s.wg.Add(1)
			go func() {
				defer s.wg.Done()
				defer conn.Close()
				ServeConn(conn, 8, func(env *Envelope) *Envelope {
					if s.failN.Add(-1) >= 0 {
						s.fails.Add(1)
						return ErrorEnvelope(env.ID, errors.New("injected failure"))
					}
					s.served.Add(1)
					var p echoPayload
					if err := env.Decode(&p); err != nil {
						return ErrorEnvelope(env.ID, err)
					}
					reply, _ := NewEnvelope("echo", env.ID, p)
					return reply
				})
			}()
		}
	}()
}

// stop kills the listener and every live connection.
func (s *restartableEchoServer) stop() {
	s.mu.Lock()
	ln := s.ln
	conns := s.conns
	s.conns = nil
	s.mu.Unlock()
	if ln != nil {
		_ = ln.Close()
	}
	for _, c := range conns {
		_ = c.Close()
	}
	s.wg.Wait()
}

// restart reclaims the same address (retrying briefly: the kernel may lag
// releasing it).
func (s *restartableEchoServer) restart() {
	deadline := time.Now().Add(5 * time.Second)
	for {
		ln, err := net.Listen("tcp", s.addr)
		if err == nil {
			s.start(ln)
			return
		}
		if time.Now().After(deadline) {
			s.t.Fatalf("relisten %s: %v", s.addr, err)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestHeartbeatSurvivesServerRestart is the satellite's acceptance test:
// a heartbeat loop using CallIdempotent rides out a server restart with
// ZERO caller-visible errors — the retry absorbs the outage and the
// proactive reconnect loop (plus the call-path redial) finds the new
// incarnation.
func TestHeartbeatSurvivesServerRestart(t *testing.T) {
	srv := newRestartableEchoServer(t)
	defer srv.stop()
	c := NewClient(echoDialer(srv.addr), 10*time.Second)
	defer c.Close()

	beat := func(i int) error {
		_, err := c.CallIdempotent(context.Background(), "echo", echoPayload{Token: "beat"})
		return err
	}
	for i := 0; i < 5; i++ {
		if err := beat(i); err != nil {
			t.Fatalf("beat %d before restart: %v", i, err)
		}
	}
	srv.stop()
	// A beat issued while the server is fully down must also survive: it
	// retries with backoff until the restart lands.
	done := make(chan error, 1)
	go func() {
		done <- beat(-1)
	}()
	time.Sleep(30 * time.Millisecond)
	srv.restart()
	if err := <-done; err != nil {
		t.Fatalf("beat across restart: %v", err)
	}
	for i := 0; i < 5; i++ {
		if err := beat(i); err != nil {
			t.Fatalf("beat %d after restart: %v", i, err)
		}
	}
}

// TestCallIdempotentDoesNotRetryRemoteErrors: failures the server reports
// are not transport loss; they surface immediately, exactly once.
func TestCallIdempotentDoesNotRetryRemoteErrors(t *testing.T) {
	srv := newRestartableEchoServer(t)
	defer srv.stop()
	c := NewClient(echoDialer(srv.addr), 5*time.Second)
	defer c.Close()

	srv.failN.Store(1) // exactly the next request fails
	_, err := c.CallIdempotent(context.Background(), "echo", echoPayload{Token: "x"})
	var remote *RemoteError
	if !errors.As(err, &remote) {
		t.Fatalf("err = %v, want RemoteError", err)
	}
	if got := srv.fails.Load(); got != 1 {
		t.Fatalf("server failed %d requests; the remote error must not be retried", got)
	}
}

// TestCallIdempotentRespectsContext: a cancelled context cuts the retry
// loop off instead of spinning against a dead server.
func TestCallIdempotentRespectsContext(t *testing.T) {
	srv := newRestartableEchoServer(t)
	srv.stop() // server never comes back
	c := NewClient(echoDialer(srv.addr), 0)
	defer c.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.CallIdempotent(ctx, "echo", echoPayload{Token: "x"})
	if err == nil {
		t.Fatal("call against a dead server should fail")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("retry loop ran %v past its context", elapsed)
	}
}

// TestProactiveReconnectRestoresConnection: after a connection loss the
// background loop redials on its own — without any further calls — so a
// later call finds a live connection already negotiated.
func TestProactiveReconnectRestoresConnection(t *testing.T) {
	srv := newRestartableEchoServer(t)
	defer srv.stop()
	c := NewClient(echoDialer(srv.addr), 5*time.Second)
	defer c.Close()
	checkEcho(t, c, "before")

	srv.stop()
	// Trip the failure so the client notices and starts reconnecting.
	if _, err := c.Call("echo", echoPayload{Token: "down"}); err == nil {
		t.Fatal("call against stopped server should fail")
	}
	srv.restart()

	// No calls issued here: the background loop alone must restore the
	// connection.
	deadline := time.Now().Add(5 * time.Second)
	for c.CodecName() == "" {
		if time.Now().After(deadline) {
			t.Fatal("proactive reconnect never restored the connection")
		}
		time.Sleep(10 * time.Millisecond)
	}
	checkEcho(t, c, "after")
}
