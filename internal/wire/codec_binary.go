package wire

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"actyp/internal/pool"
	"actyp/internal/shadow"
)

// Binary frame body layout:
//
//	magic 0xAC | version 0x01 | type uvarint | id uvarint | payload...
//
// A type of 0 is followed by a length-prefixed type string (private
// protocol extensions such as the proxy and stage messages); nonzero
// types index the fixed table below. The payload region is empty for
// bare envelopes, or one tag byte plus data:
//
//	0x00  generic fallback: the data is a JSON document
//	0x01  typed fast path: uvarint payload-type id, then fixed fields
//
// Fast-path fields are length-prefixed strings (uvarint length + bytes),
// varints for integers, and a presence byte + UnixNano varint for times.
// The magic byte distinguishes binary bodies from JSON ones (which open
// with '{'), which is what lets the negotiation ack be sniffed.
//
// Version 0x02 ("binary2") inserts one flags byte between the id and the
// payload, carrying the overload-control envelope fields:
//
//	bit0  deadline present: varint UnixNano follows
//	bit1  from present: length-prefixed string follows
//
// Payload encodings are identical across versions. Old builds reject
// version 0x02, which is why binary2 is a separately negotiated codec
// name rather than a silent upgrade: peers that do not know it never
// receive it. New builds decode both versions on any binary connection.
const (
	binMagic    = 0xAC
	binVersion  = 0x01
	binVersion2 = 0x02
)

// binary2 envelope flag bits.
const (
	binFlagDeadline = 1 << 0
	binFlagFrom     = 1 << 1
)

// Envelope type table. 0 is reserved for the inline-string escape.
var binTypeIDs = map[string]uint64{
	TypeQuery:     1,
	TypeRelease:   2,
	TypeRenew:     3,
	TypePing:      4,
	TypeSpawnPool: 5,
	TypeError:     6,
	TypeHello:     7,
	TypeHelloAck:  8,
}

var binTypeNames = func() map[uint64]string {
	m := make(map[uint64]string, len(binTypeIDs))
	for name, id := range binTypeIDs {
		m[id] = name
	}
	return m
}()

// Payload tag bytes and fast-path payload-type ids.
const (
	binPayloadJSON  = 0x00
	binPayloadTyped = 0x01
)

const (
	pidQueryRequest = iota + 1
	pidQueryReply
	pidReleaseRequest
	pidReleaseReply
	pidRenewRequest
	pidRenewReply
	pidErrorReply
	pidSpawnPoolRequest
	pidSpawnPoolReply
	pidHello
	pidHelloAck
	pidBusyReply
)

type binaryCodec struct {
	// v2 frames carry the flags byte (From, Deadline). Both variants
	// decode both frame versions; v2 only governs what gets written.
	v2 bool
}

func (c binaryCodec) Name() string {
	if c.v2 {
		return "binary2"
	}
	return "binary"
}

// isBinaryFamily reports whether a payload decoded by c can be re-framed
// by any binary codec: v1 and v2 share payload encodings, so payloads
// move freely between them.
func isBinaryFamily(c Codec) bool {
	_, ok := c.(binaryCodec)
	return ok
}

func (c binaryCodec) AppendEnvelope(dst []byte, env *Envelope) ([]byte, error) {
	version := byte(binVersion)
	if c.v2 {
		version = binVersion2
	}
	dst = append(dst, binMagic, version)
	if id, ok := binTypeIDs[env.Type]; ok {
		dst = binary.AppendUvarint(dst, id)
	} else {
		dst = binary.AppendUvarint(dst, 0)
		dst = appendBinString(dst, env.Type)
	}
	dst = binary.AppendUvarint(dst, env.ID)
	if c.v2 {
		var flags byte
		if env.Deadline != 0 {
			flags |= binFlagDeadline
		}
		if env.From != "" {
			flags |= binFlagFrom
		}
		dst = append(dst, flags)
		if env.Deadline != 0 {
			dst = binary.AppendVarint(dst, env.Deadline)
		}
		if env.From != "" {
			dst = appendBinString(dst, env.From)
		}
	}
	switch {
	case len(env.Payload) > 0:
		if isBinaryFamily(env.codec) {
			return append(dst, env.Payload...), nil // already tagged
		}
		if env.codec == nil || env.codec == JSON {
			// Raw JSON payload (hand-built envelope or one decoded from a
			// JSON peer): carry it under the generic fallback tag.
			dst = append(dst, binPayloadJSON)
			return append(dst, env.Payload...), nil
		}
		return dst, fmt.Errorf("cannot re-frame %s payload decoded by %q as %s", env.Type, env.codec.Name(), c.Name())
	case env.Msg != nil:
		return appendBinPayload(dst, env.Type, env.Msg)
	}
	return dst, nil
}

func (binaryCodec) DecodeEnvelope(body []byte) (*Envelope, error) {
	if len(body) < 2 || body[0] != binMagic {
		return nil, errors.New("not a binary frame")
	}
	version := body[1]
	if version != binVersion && version != binVersion2 {
		return nil, fmt.Errorf("unsupported binary frame version %d", version)
	}
	cur := binCursor{b: body[2:]}
	typ := ""
	if tid := cur.uvarint(); tid == 0 {
		typ = cur.string()
	} else {
		typ = binTypeNames[tid]
		if typ == "" {
			cur.fail("unknown envelope type id %d", tid)
		}
	}
	id := cur.uvarint()
	env := &Envelope{Type: typ, ID: id, codec: Binary}
	if version == binVersion2 {
		env.codec = Binary2
		flags := cur.byte()
		if flags&binFlagDeadline != 0 {
			env.Deadline = cur.varint()
		}
		if flags&binFlagFrom != 0 {
			env.From = cur.string()
		}
	}
	if cur.err != nil {
		return nil, cur.err
	}
	if typ == "" {
		return nil, errors.New("envelope without type")
	}
	if len(cur.b) > 0 {
		// Copy the payload out of the pooled read buffer.
		env.Payload = append([]byte(nil), cur.b...)
	}
	return env, nil
}

func (binaryCodec) DecodePayload(payload []byte, out any) error {
	if len(payload) == 0 {
		return errors.New("empty payload")
	}
	tag, rest := payload[0], payload[1:]
	switch tag {
	case binPayloadJSON:
		return json.Unmarshal(rest, out)
	case binPayloadTyped:
		return decodeBinTyped(rest, out)
	}
	return fmt.Errorf("unknown payload tag 0x%02x", tag)
}

// appendBinPayload encodes a typed payload: hot message types get the
// hand-rolled fast path, everything else (private protocol extensions,
// test payloads) falls back to JSON under the generic tag.
func appendBinPayload(dst []byte, typ string, msg any) ([]byte, error) {
	switch m := msg.(type) {
	case QueryRequest:
		return appendBinQueryRequest(dst, &m), nil
	case *QueryRequest:
		return appendBinQueryRequest(dst, m), nil
	case QueryReply:
		return appendBinQueryReply(dst, &m), nil
	case *QueryReply:
		return appendBinQueryReply(dst, m), nil
	case ReleaseRequest:
		return appendBinReleaseRequest(dst, &m), nil
	case *ReleaseRequest:
		return appendBinReleaseRequest(dst, m), nil
	case ReleaseReply, *ReleaseReply:
		return appendBinEmpty(dst, pidReleaseReply), nil
	case RenewRequest:
		return appendBinRenewRequest(dst, &m), nil
	case *RenewRequest:
		return appendBinRenewRequest(dst, m), nil
	case RenewReply, *RenewReply:
		return appendBinEmpty(dst, pidRenewReply), nil
	case ErrorReply:
		return appendBinErrorReply(dst, &m), nil
	case *ErrorReply:
		return appendBinErrorReply(dst, m), nil
	case SpawnPoolRequest:
		return appendBinSpawnPoolRequest(dst, &m), nil
	case *SpawnPoolRequest:
		return appendBinSpawnPoolRequest(dst, m), nil
	case SpawnPoolReply:
		return appendBinSpawnPoolReply(dst, &m), nil
	case *SpawnPoolReply:
		return appendBinSpawnPoolReply(dst, m), nil
	case Hello:
		return appendBinHello(dst, &m), nil
	case *Hello:
		return appendBinHello(dst, m), nil
	case HelloAck:
		return appendBinHelloAck(dst, &m), nil
	case *HelloAck:
		return appendBinHelloAck(dst, m), nil
	case BusyReply:
		return appendBinBusyReply(dst, &m), nil
	case *BusyReply:
		return appendBinBusyReply(dst, m), nil
	}
	raw, err := json.Marshal(msg)
	if err != nil {
		return dst, fmt.Errorf("marshal %s payload: %w", typ, err)
	}
	dst = append(dst, binPayloadJSON)
	return append(dst, raw...), nil
}

func decodeBinTyped(b []byte, out any) error {
	cur := binCursor{b: b}
	pid := cur.uvarint()
	if cur.err != nil {
		return cur.err
	}
	check := func(want uint64) bool {
		if pid != want {
			cur.fail("payload type id %d does not decode into %T", pid, out)
			return false
		}
		return true
	}
	switch v := out.(type) {
	case *QueryRequest:
		if check(pidQueryRequest) {
			readBinQueryRequest(&cur, v)
		}
	case *QueryReply:
		if check(pidQueryReply) {
			readBinQueryReply(&cur, v)
		}
	case *ReleaseRequest:
		if check(pidReleaseRequest) {
			readBinReleaseRequest(&cur, v)
		}
	case *ReleaseReply:
		check(pidReleaseReply)
	case *RenewRequest:
		if check(pidRenewRequest) {
			v.Lease = readBinLease(&cur)
		}
	case *RenewReply:
		check(pidRenewReply)
	case *ErrorReply:
		if check(pidErrorReply) {
			v.Message = cur.string()
		}
	case *SpawnPoolRequest:
		if check(pidSpawnPoolRequest) {
			v.Signature = cur.string()
			v.Identifier = cur.string()
			v.Instance = int(cur.varint())
			v.Objective = cur.string()
		}
	case *SpawnPoolReply:
		if check(pidSpawnPoolReply) {
			v.Instance = cur.string()
			v.Addr = cur.string()
		}
	case *Hello:
		if check(pidHello) {
			v.Codecs = cur.strings()
			if cur.byte() != 0 {
				first := &HelloFirst{}
				first.Type = cur.string()
				first.ID = cur.uvarint()
				first.Payload = cur.bytes()
				if cur.err == nil {
					v.First = first
				}
			}
		}
	case *HelloAck:
		if check(pidHelloAck) {
			v.Codec = cur.string()
			// Optional trailing echo byte (see appendBinHelloAck): its
			// absence means a pre-Hello.First peer.
			if len(cur.b) > 0 {
				v.First = cur.byte() != 0
			}
		}
	case *BusyReply:
		if check(pidBusyReply) {
			v.RetryAfterMS = cur.varint()
			v.Reason = cur.string()
		}
	default:
		return fmt.Errorf("no binary decoder for %T", out)
	}
	return cur.done()
}

func appendBinQueryRequest(dst []byte, m *QueryRequest) []byte {
	dst = append(dst, binPayloadTyped)
	dst = binary.AppendUvarint(dst, pidQueryRequest)
	dst = appendBinString(dst, m.Lang)
	dst = appendBinString(dst, m.Text)
	dst = binary.AppendVarint(dst, int64(m.TTL))
	return appendBinStrings(dst, m.Visited)
}

func readBinQueryRequest(cur *binCursor, m *QueryRequest) {
	m.Lang = cur.string()
	m.Text = cur.string()
	m.TTL = int(cur.varint())
	m.Visited = cur.strings()
}

func appendBinQueryReply(dst []byte, m *QueryReply) []byte {
	dst = append(dst, binPayloadTyped)
	dst = binary.AppendUvarint(dst, pidQueryReply)
	var flags byte
	if m.Lease != nil {
		flags |= 1
	}
	if m.Shadow != nil {
		flags |= 2
	}
	dst = append(dst, flags)
	if m.Lease != nil {
		dst = appendBinLease(dst, *m.Lease)
	}
	if m.Shadow != nil {
		dst = appendBinAccount(dst, *m.Shadow)
	}
	dst = binary.AppendVarint(dst, int64(m.Fragments))
	dst = binary.AppendVarint(dst, int64(m.Succeeded))
	return binary.AppendVarint(dst, m.ElapsedNS)
}

func readBinQueryReply(cur *binCursor, m *QueryReply) {
	flags := cur.byte()
	if flags&1 != 0 {
		lease := readBinLease(cur)
		m.Lease = &lease
	}
	if flags&2 != 0 {
		acct := readBinAccount(cur)
		m.Shadow = &acct
	}
	m.Fragments = int(cur.varint())
	m.Succeeded = int(cur.varint())
	m.ElapsedNS = cur.varint()
}

func appendBinReleaseRequest(dst []byte, m *ReleaseRequest) []byte {
	dst = append(dst, binPayloadTyped)
	dst = binary.AppendUvarint(dst, pidReleaseRequest)
	dst = appendBinLease(dst, m.Lease)
	if m.Shadow == nil {
		return append(dst, 0)
	}
	dst = append(dst, 1)
	return appendBinAccount(dst, *m.Shadow)
}

func readBinReleaseRequest(cur *binCursor, m *ReleaseRequest) {
	m.Lease = readBinLease(cur)
	if cur.byte() != 0 {
		acct := readBinAccount(cur)
		m.Shadow = &acct
	}
}

func appendBinRenewRequest(dst []byte, m *RenewRequest) []byte {
	dst = append(dst, binPayloadTyped)
	dst = binary.AppendUvarint(dst, pidRenewRequest)
	return appendBinLease(dst, m.Lease)
}

func appendBinErrorReply(dst []byte, m *ErrorReply) []byte {
	dst = append(dst, binPayloadTyped)
	dst = binary.AppendUvarint(dst, pidErrorReply)
	return appendBinString(dst, m.Message)
}

func appendBinSpawnPoolRequest(dst []byte, m *SpawnPoolRequest) []byte {
	dst = append(dst, binPayloadTyped)
	dst = binary.AppendUvarint(dst, pidSpawnPoolRequest)
	dst = appendBinString(dst, m.Signature)
	dst = appendBinString(dst, m.Identifier)
	dst = binary.AppendVarint(dst, int64(m.Instance))
	return appendBinString(dst, m.Objective)
}

func appendBinSpawnPoolReply(dst []byte, m *SpawnPoolReply) []byte {
	dst = append(dst, binPayloadTyped)
	dst = binary.AppendUvarint(dst, pidSpawnPoolReply)
	dst = appendBinString(dst, m.Instance)
	return appendBinString(dst, m.Addr)
}

func appendBinHello(dst []byte, m *Hello) []byte {
	dst = append(dst, binPayloadTyped)
	dst = binary.AppendUvarint(dst, pidHello)
	dst = appendBinStrings(dst, m.Codecs)
	if m.First == nil {
		return append(dst, 0)
	}
	dst = append(dst, 1)
	dst = appendBinString(dst, m.First.Type)
	dst = binary.AppendUvarint(dst, m.First.ID)
	return appendBinBytes(dst, m.First.Payload)
}

// appendBinBusyReply is a typed fast path even though "busy" travels via
// the inline-string envelope escape: only overload-aware builds ever
// encode or decode a busy payload, so there is no old decoder to protect.
func appendBinBusyReply(dst []byte, m *BusyReply) []byte {
	dst = append(dst, binPayloadTyped)
	dst = binary.AppendUvarint(dst, pidBusyReply)
	dst = binary.AppendVarint(dst, m.RetryAfterMS)
	return appendBinString(dst, m.Reason)
}

func appendBinHelloAck(dst []byte, m *HelloAck) []byte {
	dst = append(dst, binPayloadTyped)
	dst = binary.AppendUvarint(dst, pidHelloAck)
	dst = appendBinString(dst, m.Codec)
	if m.First {
		// Emitted only when echoing a piggybacked request — clients that
		// never send Hello.First (all older builds) never see this byte,
		// so their fixed-shape decoders keep working.
		dst = append(dst, 1)
	}
	return dst
}

func appendBinEmpty(dst []byte, pid uint64) []byte {
	dst = append(dst, binPayloadTyped)
	return binary.AppendUvarint(dst, pid)
}

func appendBinLease(dst []byte, l pool.Lease) []byte {
	dst = appendBinString(dst, l.ID)
	dst = appendBinString(dst, l.Machine)
	dst = appendBinString(dst, l.Addr)
	dst = binary.AppendVarint(dst, int64(l.ExecUnitPort))
	dst = binary.AppendVarint(dst, int64(l.MountMgrPort))
	dst = appendBinString(dst, l.AccessKey)
	dst = appendBinString(dst, l.Pool)
	return appendBinTime(dst, l.Granted)
}

func readBinLease(cur *binCursor) pool.Lease {
	var l pool.Lease
	l.ID = cur.string()
	l.Machine = cur.string()
	l.Addr = cur.string()
	l.ExecUnitPort = int(cur.varint())
	l.MountMgrPort = int(cur.varint())
	l.AccessKey = cur.string()
	l.Pool = cur.string()
	l.Granted = cur.time()
	return l
}

func appendBinAccount(dst []byte, a shadow.Account) []byte {
	dst = appendBinString(dst, a.Machine)
	dst = appendBinString(dst, a.User)
	return binary.AppendVarint(dst, int64(a.UID))
}

func readBinAccount(cur *binCursor) shadow.Account {
	var a shadow.Account
	a.Machine = cur.string()
	a.User = cur.string()
	a.UID = int(cur.varint())
	return a
}

func appendBinString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func appendBinBytes(dst, b []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(b)))
	return append(dst, b...)
}

func appendBinStrings(dst []byte, ss []string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(ss)))
	for _, s := range ss {
		dst = appendBinString(dst, s)
	}
	return dst
}

// appendBinTime encodes a presence byte plus UnixNano; the zero time has
// no defined UnixNano, so it travels as the absent marker.
func appendBinTime(dst []byte, t time.Time) []byte {
	if t.IsZero() {
		return append(dst, 0)
	}
	dst = append(dst, 1)
	return binary.AppendVarint(dst, t.UnixNano())
}

// binCursor walks a binary payload with latched errors and hard bounds
// checks, so corrupt or hostile frames fail cleanly instead of panicking
// or over-allocating.
type binCursor struct {
	b   []byte
	err error
}

func (c *binCursor) fail(format string, args ...any) {
	if c.err == nil {
		c.err = fmt.Errorf(format, args...)
	}
}

func (c *binCursor) byte() byte {
	if c.err != nil {
		return 0
	}
	if len(c.b) == 0 {
		c.fail("truncated payload: missing byte")
		return 0
	}
	v := c.b[0]
	c.b = c.b[1:]
	return v
}

func (c *binCursor) uvarint() uint64 {
	if c.err != nil {
		return 0
	}
	v, n := binary.Uvarint(c.b)
	if n <= 0 {
		c.fail("truncated payload: bad uvarint")
		return 0
	}
	c.b = c.b[n:]
	return v
}

func (c *binCursor) varint() int64 {
	if c.err != nil {
		return 0
	}
	v, n := binary.Varint(c.b)
	if n <= 0 {
		c.fail("truncated payload: bad varint")
		return 0
	}
	c.b = c.b[n:]
	return v
}

func (c *binCursor) string() string {
	n := c.uvarint()
	if c.err != nil {
		return ""
	}
	if n > uint64(len(c.b)) {
		c.fail("truncated payload: string of %d bytes with %d left", n, len(c.b))
		return ""
	}
	s := string(c.b[:n])
	c.b = c.b[n:]
	return s
}

// bytes reads a length-prefixed byte string, copying it out of the pooled
// read buffer. An empty string decodes as nil.
func (c *binCursor) bytes() []byte {
	n := c.uvarint()
	if c.err != nil {
		return nil
	}
	if n > uint64(len(c.b)) {
		c.fail("truncated payload: byte string of %d bytes with %d left", n, len(c.b))
		return nil
	}
	if n == 0 {
		return nil
	}
	out := append([]byte(nil), c.b[:n]...)
	c.b = c.b[n:]
	return out
}

func (c *binCursor) strings() []string {
	n := c.uvarint()
	if c.err != nil {
		return nil
	}
	// Every element costs at least one length byte, so a count past the
	// remaining bytes is corrupt — reject before allocating.
	if n > uint64(len(c.b)) {
		c.fail("truncated payload: %d strings with %d bytes left", n, len(c.b))
		return nil
	}
	if n == 0 {
		return nil
	}
	out := make([]string, 0, n)
	for i := uint64(0); i < n && c.err == nil; i++ {
		out = append(out, c.string())
	}
	return out
}

func (c *binCursor) time() time.Time {
	if c.byte() == 0 {
		return time.Time{}
	}
	ns := c.varint()
	if c.err != nil {
		return time.Time{}
	}
	return time.Unix(0, ns)
}

func (c *binCursor) done() error {
	if c.err != nil {
		return c.err
	}
	if len(c.b) != 0 {
		return fmt.Errorf("payload has %d trailing bytes", len(c.b))
	}
	return nil
}
