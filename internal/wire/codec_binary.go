package wire

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"actyp/internal/pool"
	"actyp/internal/registry"
	"actyp/internal/shadow"
)

// Binary frame body layout:
//
//	magic 0xAC | version 0x01 | type uvarint | id uvarint | payload...
//
// A type of 0 is followed by a length-prefixed type string (private
// protocol extensions such as the proxy and stage messages); nonzero
// types index the fixed table below. The payload region is empty for
// bare envelopes, or one tag byte plus data:
//
//	0x00  generic fallback: the data is a JSON document
//	0x01  typed fast path: uvarint payload-type id, then fixed fields
//
// Fast-path fields are length-prefixed strings (uvarint length + bytes),
// varints for integers, and a presence byte + UnixNano varint for times.
// The magic byte distinguishes binary bodies from JSON ones (which open
// with '{'), which is what lets the negotiation ack be sniffed.
//
// Version 0x02 ("binary2") inserts one flags byte between the id and the
// payload, carrying the overload-control envelope fields:
//
//	bit0  deadline present: varint UnixNano follows
//	bit1  from present: length-prefixed string follows
//
// Payload encodings are identical across versions. Old builds reject
// version 0x02, which is why binary2 is a separately negotiated codec
// name rather than a silent upgrade: peers that do not know it never
// receive it. New builds decode both versions on any binary connection.
const (
	binMagic    = 0xAC
	binVersion  = 0x01
	binVersion2 = 0x02
)

// binary2 envelope flag bits.
const (
	binFlagDeadline = 1 << 0
	binFlagFrom     = 1 << 1
)

// Envelope type table. 0 is reserved for the inline-string escape.
var binTypeIDs = map[string]uint64{
	TypeQuery:     1,
	TypeRelease:   2,
	TypeRenew:     3,
	TypePing:      4,
	TypeSpawnPool: 5,
	TypeError:     6,
	TypeHello:     7,
	TypeHelloAck:  8,
}

var binTypeNames = func() map[uint64]string {
	m := make(map[uint64]string, len(binTypeIDs))
	for name, id := range binTypeIDs {
		m[id] = name
	}
	return m
}()

// Payload tag bytes and fast-path payload-type ids. The ext tag carries
// hand-rolled private payloads (see ExtPayload); the compressed tag
// wraps any of the other three behind an algo byte and a raw length
// (see compress.go). Every binary-family decoder understands all four
// tags regardless of which codec was negotiated.
const (
	binPayloadJSON       = 0x00
	binPayloadTyped      = 0x01
	binPayloadExt        = 0x02
	binPayloadCompressed = 0x03
)

const (
	pidQueryRequest = iota + 1
	pidQueryReply
	pidReleaseRequest
	pidReleaseReply
	pidRenewRequest
	pidRenewReply
	pidErrorReply
	pidSpawnPoolRequest
	pidSpawnPoolReply
	pidHello
	pidHelloAck
	pidBusyReply
	pidSelectRequest
	pidSelectReply
	pidWatchEvents
)

type binaryCodec struct {
	// v2 frames carry the flags byte (From, Deadline). Both variants
	// decode both frame versions; v2 only governs what gets written.
	v2 bool
	// algo, when set, compresses payload regions at or above
	// compressMinSize under the named algorithm ("flate"). Like v2 it
	// only governs what gets written: every binary codec decodes
	// compressed payloads.
	algo string
}

func (c binaryCodec) Name() string {
	name := "binary"
	if c.v2 {
		name = "binary2"
	}
	if c.algo != "" {
		name += "+" + c.algo
	}
	return name
}

// isBinaryFamily reports whether a payload decoded by c can be re-framed
// by any binary codec: v1 and v2 share payload encodings, so payloads
// move freely between them.
func isBinaryFamily(c Codec) bool {
	_, ok := c.(binaryCodec)
	return ok
}

// rawBodyLen returns what the frame body would measure with a compressed
// payload inflated — the uncompressed-equivalent size WireStats accounts
// as "raw". Bodies without a compressed payload (and bodies this cheap
// parse cannot make sense of) report their own length.
func (binaryCodec) rawBodyLen(body []byte) int {
	if len(body) < 2 || body[0] != binMagic {
		return len(body)
	}
	version := body[1]
	cur := binCursor{b: body[2:]}
	if tid := cur.uvarint(); tid == 0 {
		cur.string()
	}
	cur.uvarint() // id
	if version == binVersion2 {
		flags := cur.byte()
		if flags&binFlagDeadline != 0 {
			cur.varint()
		}
		if flags&binFlagFrom != 0 {
			cur.string()
		}
	}
	if cur.err != nil || len(cur.b) < 2 || cur.b[0] != binPayloadCompressed {
		return len(body)
	}
	header := len(body) - len(cur.b)
	rawLen, n := binary.Uvarint(cur.b[2:]) // skip tag and algo bytes
	if n <= 0 {
		return len(body)
	}
	// header + plain payload (tag byte included in rawLen's payload bytes)
	return header + int(rawLen)
}

func (c binaryCodec) AppendEnvelope(dst []byte, env *Envelope) ([]byte, error) {
	version := byte(binVersion)
	if c.v2 {
		version = binVersion2
	}
	dst = append(dst, binMagic, version)
	if id, ok := binTypeIDs[env.Type]; ok {
		dst = binary.AppendUvarint(dst, id)
	} else {
		dst = binary.AppendUvarint(dst, 0)
		dst = appendBinString(dst, env.Type)
	}
	dst = binary.AppendUvarint(dst, env.ID)
	if c.v2 {
		var flags byte
		if env.Deadline != 0 {
			flags |= binFlagDeadline
		}
		if env.From != "" {
			flags |= binFlagFrom
		}
		dst = append(dst, flags)
		if env.Deadline != 0 {
			dst = binary.AppendVarint(dst, env.Deadline)
		}
		if env.From != "" {
			dst = appendBinString(dst, env.From)
		}
	}
	payloadStart := len(dst)
	switch {
	case len(env.Payload) > 0:
		switch {
		case isBinaryFamily(env.codec):
			dst = append(dst, env.Payload...) // already tagged
		case env.codec == nil || env.codec == JSON:
			// Raw JSON payload (hand-built envelope or one decoded from a
			// JSON peer): carry it under the generic fallback tag.
			dst = append(dst, binPayloadJSON)
			dst = append(dst, env.Payload...)
		default:
			return dst, fmt.Errorf("cannot re-frame %s payload decoded by %q as %s", env.Type, env.codec.Name(), c.Name())
		}
	case env.Msg != nil:
		var err error
		if dst, err = appendBinPayload(dst, env.Type, env.Msg); err != nil {
			return dst, err
		}
	}
	return c.maybeCompress(dst, payloadStart)
}

// maybeCompress replaces the payload region dst[start:] with its
// compressed form when the codec carries an algorithm, the payload is at
// or above the threshold, and compression actually shrinks it. Payloads
// re-framed from a compressed connection arrive already under the 0x03
// tag and pass through untouched.
func (c binaryCodec) maybeCompress(dst []byte, start int) ([]byte, error) {
	if c.algo == "" {
		return dst, nil
	}
	raw := len(dst) - start
	if raw < compressMinSize || dst[start] == binPayloadCompressed {
		return dst, nil
	}
	ab, ok := algoByte(c.algo)
	if !ok {
		return dst, fmt.Errorf("unknown compression algo %q", c.algo)
	}
	// Never ship a payload the peer's decompressed-size cap is guaranteed
	// to reject, however well it deflates: fail it here, before the wire,
	// so an oversized call costs one call rather than a server round trip.
	if raw > MaxFrame {
		return dst, fmt.Errorf("wire: payload of %d bytes: %w", raw, ErrFrameTooLarge)
	}
	comp, err := deflate(nil, dst[start:])
	if err != nil {
		return dst, fmt.Errorf("compress payload: %w", err)
	}
	// tag + algo byte + uvarint raw length
	overhead := 2 + uvarintLen(uint64(raw))
	if len(comp)+overhead >= raw {
		return dst, nil // incompressible: ship the plain tag
	}
	dst = dst[:start]
	dst = append(dst, binPayloadCompressed, ab)
	dst = binary.AppendUvarint(dst, uint64(raw))
	return append(dst, comp...), nil
}

func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

func (binaryCodec) DecodeEnvelope(body []byte) (*Envelope, error) {
	if len(body) < 2 || body[0] != binMagic {
		return nil, errors.New("not a binary frame")
	}
	version := body[1]
	if version != binVersion && version != binVersion2 {
		return nil, fmt.Errorf("unsupported binary frame version %d", version)
	}
	cur := binCursor{b: body[2:]}
	typ := ""
	if tid := cur.uvarint(); tid == 0 {
		typ = cur.string()
	} else {
		typ = binTypeNames[tid]
		if typ == "" {
			cur.fail("unknown envelope type id %d", tid)
		}
	}
	id := cur.uvarint()
	env := &Envelope{Type: typ, ID: id, codec: Binary}
	if version == binVersion2 {
		env.codec = Binary2
		flags := cur.byte()
		if flags&binFlagDeadline != 0 {
			env.Deadline = cur.varint()
		}
		if flags&binFlagFrom != 0 {
			env.From = cur.string()
		}
	}
	if cur.err != nil {
		return nil, cur.err
	}
	if typ == "" {
		return nil, errors.New("envelope without type")
	}
	if len(cur.b) > 0 {
		// Copy the payload out of the pooled read buffer.
		env.Payload = append([]byte(nil), cur.b...)
	}
	return env, nil
}

func (c binaryCodec) DecodePayload(payload []byte, out any) error {
	if len(payload) == 0 {
		return errors.New("empty payload")
	}
	tag, rest := payload[0], payload[1:]
	switch tag {
	case binPayloadJSON:
		return json.Unmarshal(rest, out)
	case binPayloadTyped:
		return decodeBinTyped(rest, out)
	case binPayloadExt:
		ep, ok := out.(ExtPayload)
		if !ok {
			return fmt.Errorf("no ext decoder for %T", out)
		}
		cur := &Cursor{c: binCursor{b: rest}}
		if err := ep.DecodeExt(cur); err != nil {
			return err
		}
		return cur.c.done()
	case binPayloadCompressed:
		raw, err := inflatePayload(rest)
		if err != nil {
			return err
		}
		if len(raw) == 0 || raw[0] == binPayloadCompressed {
			// A nested compressed payload is only ever an amplification
			// attempt; no encoder produces one.
			return errors.New("corrupt compressed payload body")
		}
		return c.DecodePayload(raw, out)
	}
	return fmt.Errorf("unknown payload tag 0x%02x", tag)
}

// appendBinPayload encodes a typed payload: hot message types get the
// hand-rolled fast path, ExtPayload implementations (private protocol
// extensions that opted in) carry their own codec under the ext tag, and
// everything else falls back to JSON under the generic tag.
func appendBinPayload(dst []byte, typ string, msg any) ([]byte, error) {
	if ep, ok := msg.(ExtPayload); ok {
		dst = append(dst, binPayloadExt)
		return ep.AppendExt(dst), nil
	}
	switch m := msg.(type) {
	case QueryRequest:
		return appendBinQueryRequest(dst, &m), nil
	case *QueryRequest:
		return appendBinQueryRequest(dst, m), nil
	case QueryReply:
		return appendBinQueryReply(dst, &m), nil
	case *QueryReply:
		return appendBinQueryReply(dst, m), nil
	case ReleaseRequest:
		return appendBinReleaseRequest(dst, &m), nil
	case *ReleaseRequest:
		return appendBinReleaseRequest(dst, m), nil
	case ReleaseReply, *ReleaseReply:
		return appendBinEmpty(dst, pidReleaseReply), nil
	case RenewRequest:
		return appendBinRenewRequest(dst, &m), nil
	case *RenewRequest:
		return appendBinRenewRequest(dst, m), nil
	case RenewReply, *RenewReply:
		return appendBinEmpty(dst, pidRenewReply), nil
	case ErrorReply:
		return appendBinErrorReply(dst, &m), nil
	case *ErrorReply:
		return appendBinErrorReply(dst, m), nil
	case SpawnPoolRequest:
		return appendBinSpawnPoolRequest(dst, &m), nil
	case *SpawnPoolRequest:
		return appendBinSpawnPoolRequest(dst, m), nil
	case SpawnPoolReply:
		return appendBinSpawnPoolReply(dst, &m), nil
	case *SpawnPoolReply:
		return appendBinSpawnPoolReply(dst, m), nil
	case Hello:
		return appendBinHello(dst, &m), nil
	case *Hello:
		return appendBinHello(dst, m), nil
	case HelloAck:
		return appendBinHelloAck(dst, &m), nil
	case *HelloAck:
		return appendBinHelloAck(dst, m), nil
	case BusyReply:
		return appendBinBusyReply(dst, &m), nil
	case *BusyReply:
		return appendBinBusyReply(dst, m), nil
	case SelectRequest:
		return appendBinSelectRequest(dst, &m), nil
	case *SelectRequest:
		return appendBinSelectRequest(dst, m), nil
	case SelectReply:
		return appendBinSelectReply(dst, &m)
	case *SelectReply:
		return appendBinSelectReply(dst, m)
	case WatchEvents:
		return appendBinWatchEvents(dst, &m), nil
	case *WatchEvents:
		return appendBinWatchEvents(dst, m), nil
	}
	raw, err := json.Marshal(msg)
	if err != nil {
		return dst, fmt.Errorf("marshal %s payload: %w", typ, err)
	}
	dst = append(dst, binPayloadJSON)
	return append(dst, raw...), nil
}

func decodeBinTyped(b []byte, out any) error {
	cur := binCursor{b: b}
	pid := cur.uvarint()
	if cur.err != nil {
		return cur.err
	}
	check := func(want uint64) bool {
		if pid != want {
			cur.fail("payload type id %d does not decode into %T", pid, out)
			return false
		}
		return true
	}
	switch v := out.(type) {
	case *QueryRequest:
		if check(pidQueryRequest) {
			readBinQueryRequest(&cur, v)
		}
	case *QueryReply:
		if check(pidQueryReply) {
			readBinQueryReply(&cur, v)
		}
	case *ReleaseRequest:
		if check(pidReleaseRequest) {
			readBinReleaseRequest(&cur, v)
		}
	case *ReleaseReply:
		check(pidReleaseReply)
	case *RenewRequest:
		if check(pidRenewRequest) {
			v.Lease = readBinLease(&cur)
		}
	case *RenewReply:
		check(pidRenewReply)
	case *ErrorReply:
		if check(pidErrorReply) {
			v.Message = cur.string()
		}
	case *SpawnPoolRequest:
		if check(pidSpawnPoolRequest) {
			v.Signature = cur.string()
			v.Identifier = cur.string()
			v.Instance = int(cur.varint())
			v.Objective = cur.string()
		}
	case *SpawnPoolReply:
		if check(pidSpawnPoolReply) {
			v.Instance = cur.string()
			v.Addr = cur.string()
		}
	case *Hello:
		if check(pidHello) {
			v.Codecs = cur.strings()
			if cur.byte() != 0 {
				first := &HelloFirst{}
				first.Type = cur.string()
				first.ID = cur.uvarint()
				first.Payload = cur.bytes()
				if cur.err == nil {
					v.First = first
				}
			}
		}
	case *HelloAck:
		if check(pidHelloAck) {
			v.Codec = cur.string()
			// Optional trailing echo byte (see appendBinHelloAck): its
			// absence means a pre-Hello.First peer.
			if len(cur.b) > 0 {
				v.First = cur.byte() != 0
			}
		}
	case *BusyReply:
		if check(pidBusyReply) {
			v.RetryAfterMS = cur.varint()
			v.Reason = cur.string()
		}
	case *SelectRequest:
		if check(pidSelectRequest) {
			v.Text = cur.string()
			v.Limit = int(cur.varint())
			v.Full = cur.byte() != 0
			if len(cur.b) > 0 { // optional trailing page offset
				v.Offset = int(cur.varint())
			}
		}
	case *SelectReply:
		if check(pidSelectReply) {
			readBinSelectReply(&cur, v)
		}
	case *WatchEvents:
		if check(pidWatchEvents) {
			readBinWatchEvents(&cur, v)
		}
	default:
		return fmt.Errorf("no binary decoder for %T", out)
	}
	return cur.done()
}

func appendBinQueryRequest(dst []byte, m *QueryRequest) []byte {
	dst = append(dst, binPayloadTyped)
	dst = binary.AppendUvarint(dst, pidQueryRequest)
	dst = appendBinString(dst, m.Lang)
	dst = appendBinString(dst, m.Text)
	dst = binary.AppendVarint(dst, int64(m.TTL))
	return appendBinStrings(dst, m.Visited)
}

func readBinQueryRequest(cur *binCursor, m *QueryRequest) {
	m.Lang = cur.string()
	m.Text = cur.string()
	m.TTL = int(cur.varint())
	m.Visited = cur.strings()
}

func appendBinQueryReply(dst []byte, m *QueryReply) []byte {
	dst = append(dst, binPayloadTyped)
	dst = binary.AppendUvarint(dst, pidQueryReply)
	var flags byte
	if m.Lease != nil {
		flags |= 1
	}
	if m.Shadow != nil {
		flags |= 2
	}
	dst = append(dst, flags)
	if m.Lease != nil {
		dst = appendBinLease(dst, *m.Lease)
	}
	if m.Shadow != nil {
		dst = appendBinAccount(dst, *m.Shadow)
	}
	dst = binary.AppendVarint(dst, int64(m.Fragments))
	dst = binary.AppendVarint(dst, int64(m.Succeeded))
	return binary.AppendVarint(dst, m.ElapsedNS)
}

func readBinQueryReply(cur *binCursor, m *QueryReply) {
	flags := cur.byte()
	if flags&1 != 0 {
		lease := readBinLease(cur)
		m.Lease = &lease
	}
	if flags&2 != 0 {
		acct := readBinAccount(cur)
		m.Shadow = &acct
	}
	m.Fragments = int(cur.varint())
	m.Succeeded = int(cur.varint())
	m.ElapsedNS = cur.varint()
}

func appendBinReleaseRequest(dst []byte, m *ReleaseRequest) []byte {
	dst = append(dst, binPayloadTyped)
	dst = binary.AppendUvarint(dst, pidReleaseRequest)
	dst = appendBinLease(dst, m.Lease)
	if m.Shadow == nil {
		return append(dst, 0)
	}
	dst = append(dst, 1)
	return appendBinAccount(dst, *m.Shadow)
}

func readBinReleaseRequest(cur *binCursor, m *ReleaseRequest) {
	m.Lease = readBinLease(cur)
	if cur.byte() != 0 {
		acct := readBinAccount(cur)
		m.Shadow = &acct
	}
}

func appendBinRenewRequest(dst []byte, m *RenewRequest) []byte {
	dst = append(dst, binPayloadTyped)
	dst = binary.AppendUvarint(dst, pidRenewRequest)
	return appendBinLease(dst, m.Lease)
}

func appendBinErrorReply(dst []byte, m *ErrorReply) []byte {
	dst = append(dst, binPayloadTyped)
	dst = binary.AppendUvarint(dst, pidErrorReply)
	return appendBinString(dst, m.Message)
}

func appendBinSpawnPoolRequest(dst []byte, m *SpawnPoolRequest) []byte {
	dst = append(dst, binPayloadTyped)
	dst = binary.AppendUvarint(dst, pidSpawnPoolRequest)
	dst = appendBinString(dst, m.Signature)
	dst = appendBinString(dst, m.Identifier)
	dst = binary.AppendVarint(dst, int64(m.Instance))
	return appendBinString(dst, m.Objective)
}

func appendBinSpawnPoolReply(dst []byte, m *SpawnPoolReply) []byte {
	dst = append(dst, binPayloadTyped)
	dst = binary.AppendUvarint(dst, pidSpawnPoolReply)
	dst = appendBinString(dst, m.Instance)
	return appendBinString(dst, m.Addr)
}

func appendBinHello(dst []byte, m *Hello) []byte {
	dst = append(dst, binPayloadTyped)
	dst = binary.AppendUvarint(dst, pidHello)
	dst = appendBinStrings(dst, m.Codecs)
	if m.First == nil {
		return append(dst, 0)
	}
	dst = append(dst, 1)
	dst = appendBinString(dst, m.First.Type)
	dst = binary.AppendUvarint(dst, m.First.ID)
	return appendBinBytes(dst, m.First.Payload)
}

// appendBinBusyReply is a typed fast path even though "busy" travels via
// the inline-string envelope escape: only overload-aware builds ever
// encode or decode a busy payload, so there is no old decoder to protect.
func appendBinBusyReply(dst []byte, m *BusyReply) []byte {
	dst = append(dst, binPayloadTyped)
	dst = binary.AppendUvarint(dst, pidBusyReply)
	dst = binary.AppendVarint(dst, m.RetryAfterMS)
	return appendBinString(dst, m.Reason)
}

func appendBinHelloAck(dst []byte, m *HelloAck) []byte {
	dst = append(dst, binPayloadTyped)
	dst = binary.AppendUvarint(dst, pidHelloAck)
	dst = appendBinString(dst, m.Codec)
	if m.First {
		// Emitted only when echoing a piggybacked request — clients that
		// never send Hello.First (all older builds) never see this byte,
		// so their fixed-shape decoders keep working.
		dst = append(dst, 1)
	}
	return dst
}

func appendBinSelectRequest(dst []byte, m *SelectRequest) []byte {
	dst = append(dst, binPayloadTyped)
	dst = binary.AppendUvarint(dst, pidSelectRequest)
	dst = appendBinString(dst, m.Text)
	dst = binary.AppendVarint(dst, int64(m.Limit))
	if m.Full {
		dst = append(dst, 1)
	} else {
		dst = append(dst, 0)
	}
	// Optional trailing page offset: omitted when zero so the frame stays
	// byte-identical to the pre-pagination encoding (old decoders reject
	// trailing bytes).
	if m.Offset > 0 {
		dst = binary.AppendVarint(dst, int64(m.Offset))
	}
	return dst
}

// Record-set format bytes inside a binary select reply.
const (
	recordsFull  = 0x00 // full per-record encoding: a JSON machine array
	recordsDelta = 0x01 // delta/dictionary batch (registry.AppendBatch)
)

// appendBinSelectReply encodes the record set as a delta/dictionary
// batch, or — when the reply pins Full (the differential oracle and the
// benchmark baseline) — as the full per-record JSON array.
func appendBinSelectReply(dst []byte, m *SelectReply) ([]byte, error) {
	dst = append(dst, binPayloadTyped)
	dst = binary.AppendUvarint(dst, pidSelectReply)
	dst = binary.AppendVarint(dst, int64(m.Total))
	if m.Records.Full {
		raw, err := json.Marshal(m.Records.Machines)
		if err != nil {
			return dst, fmt.Errorf("marshal select records: %w", err)
		}
		dst = append(dst, recordsFull)
		return appendBinBytes(dst, raw), nil
	}
	dst = append(dst, recordsDelta)
	return appendBinBytes(dst, registry.AppendBatch(nil, m.Records.Machines)), nil
}

func readBinSelectReply(cur *binCursor, m *SelectReply) {
	m.Total = int(cur.varint())
	format := cur.byte()
	body := cur.bytes()
	if cur.err != nil {
		return
	}
	switch format {
	case recordsFull:
		m.Records.Full = true
		if err := json.Unmarshal(body, &m.Records.Machines); err != nil {
			cur.fail("unmarshal select records: %v", err)
		}
	case recordsDelta:
		ms, err := registry.DecodeBatch(body)
		if err != nil {
			cur.fail("decode select batch: %v", err)
			return
		}
		m.Records.Machines = ms
	default:
		cur.fail("unknown record-set format 0x%02x", format)
	}
}

// appendBinWatchEvents encodes a watch stream frame: two flag bytes and
// the delta/dictionary event batch (registry.AppendEventBatch) — the
// stream's hot path, priced like the select reply's record batches.
func appendBinWatchEvents(dst []byte, m *WatchEvents) []byte {
	dst = append(dst, binPayloadTyped)
	dst = binary.AppendUvarint(dst, pidWatchEvents)
	var flags byte
	if m.Ack {
		flags |= 1
	}
	if m.Resync {
		flags |= 2
	}
	dst = append(dst, flags)
	return appendBinBytes(dst, registry.AppendEventBatch(nil, m.Events.Events))
}

func readBinWatchEvents(cur *binCursor, m *WatchEvents) {
	flags := cur.byte()
	m.Ack = flags&1 != 0
	m.Resync = flags&2 != 0
	body := cur.bytes()
	if cur.err != nil {
		return
	}
	evs, err := registry.DecodeEventBatch(body)
	if err != nil {
		cur.fail("decode watch event batch: %v", err)
		return
	}
	m.Events.Events = evs
}

func appendBinEmpty(dst []byte, pid uint64) []byte {
	dst = append(dst, binPayloadTyped)
	return binary.AppendUvarint(dst, pid)
}

func appendBinLease(dst []byte, l pool.Lease) []byte {
	dst = appendBinString(dst, l.ID)
	dst = appendBinString(dst, l.Machine)
	dst = appendBinString(dst, l.Addr)
	dst = binary.AppendVarint(dst, int64(l.ExecUnitPort))
	dst = binary.AppendVarint(dst, int64(l.MountMgrPort))
	dst = appendBinString(dst, l.AccessKey)
	dst = appendBinString(dst, l.Pool)
	return appendBinTime(dst, l.Granted)
}

func readBinLease(cur *binCursor) pool.Lease {
	var l pool.Lease
	l.ID = cur.string()
	l.Machine = cur.string()
	l.Addr = cur.string()
	l.ExecUnitPort = int(cur.varint())
	l.MountMgrPort = int(cur.varint())
	l.AccessKey = cur.string()
	l.Pool = cur.string()
	l.Granted = cur.time()
	return l
}

func appendBinAccount(dst []byte, a shadow.Account) []byte {
	dst = appendBinString(dst, a.Machine)
	dst = appendBinString(dst, a.User)
	return binary.AppendVarint(dst, int64(a.UID))
}

func readBinAccount(cur *binCursor) shadow.Account {
	var a shadow.Account
	a.Machine = cur.string()
	a.User = cur.string()
	a.UID = int(cur.varint())
	return a
}

func appendBinString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func appendBinBytes(dst, b []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(b)))
	return append(dst, b...)
}

func appendBinStrings(dst []byte, ss []string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(ss)))
	for _, s := range ss {
		dst = appendBinString(dst, s)
	}
	return dst
}

// appendBinTime encodes a presence byte plus UnixNano; the zero time has
// no defined UnixNano, so it travels as the absent marker.
func appendBinTime(dst []byte, t time.Time) []byte {
	if t.IsZero() {
		return append(dst, 0)
	}
	dst = append(dst, 1)
	return binary.AppendVarint(dst, t.UnixNano())
}

// binCursor walks a binary payload with latched errors and hard bounds
// checks, so corrupt or hostile frames fail cleanly instead of panicking
// or over-allocating.
type binCursor struct {
	b   []byte
	err error
}

func (c *binCursor) fail(format string, args ...any) {
	if c.err == nil {
		c.err = fmt.Errorf(format, args...)
	}
}

func (c *binCursor) byte() byte {
	if c.err != nil {
		return 0
	}
	if len(c.b) == 0 {
		c.fail("truncated payload: missing byte")
		return 0
	}
	v := c.b[0]
	c.b = c.b[1:]
	return v
}

func (c *binCursor) uvarint() uint64 {
	if c.err != nil {
		return 0
	}
	v, n := binary.Uvarint(c.b)
	if n <= 0 {
		c.fail("truncated payload: bad uvarint")
		return 0
	}
	c.b = c.b[n:]
	return v
}

func (c *binCursor) varint() int64 {
	if c.err != nil {
		return 0
	}
	v, n := binary.Varint(c.b)
	if n <= 0 {
		c.fail("truncated payload: bad varint")
		return 0
	}
	c.b = c.b[n:]
	return v
}

func (c *binCursor) string() string {
	n := c.uvarint()
	if c.err != nil {
		return ""
	}
	if n > uint64(len(c.b)) {
		c.fail("truncated payload: string of %d bytes with %d left", n, len(c.b))
		return ""
	}
	s := string(c.b[:n])
	c.b = c.b[n:]
	return s
}

// bytes reads a length-prefixed byte string, copying it out of the pooled
// read buffer. An empty string decodes as nil.
func (c *binCursor) bytes() []byte {
	n := c.uvarint()
	if c.err != nil {
		return nil
	}
	if n > uint64(len(c.b)) {
		c.fail("truncated payload: byte string of %d bytes with %d left", n, len(c.b))
		return nil
	}
	if n == 0 {
		return nil
	}
	out := append([]byte(nil), c.b[:n]...)
	c.b = c.b[n:]
	return out
}

func (c *binCursor) strings() []string {
	n := c.uvarint()
	if c.err != nil {
		return nil
	}
	// Every element costs at least one length byte, so a count past the
	// remaining bytes is corrupt — reject before allocating.
	if n > uint64(len(c.b)) {
		c.fail("truncated payload: %d strings with %d bytes left", n, len(c.b))
		return nil
	}
	if n == 0 {
		return nil
	}
	out := make([]string, 0, n)
	for i := uint64(0); i < n && c.err == nil; i++ {
		out = append(out, c.string())
	}
	return out
}

func (c *binCursor) time() time.Time {
	if c.byte() == 0 {
		return time.Time{}
	}
	ns := c.varint()
	if c.err != nil {
		return time.Time{}
	}
	return time.Unix(0, ns)
}

func (c *binCursor) done() error {
	if c.err != nil {
		return c.err
	}
	if len(c.b) != 0 {
		return fmt.Errorf("payload has %d trailing bytes", len(c.b))
	}
	return nil
}
