package wire

// Negotiated per-frame compression, layered inside the binary codec
// family at the payload region. A compressed codec ("binary2+flate")
// writes the exact binary2 envelope header — frames still open with the
// 0xAC magic, so the first-byte-sniff rule for the negotiation ack is
// untouched and the dispatch-relevant fields (type, id, deadline, from)
// stay readable without inflating anything. Only the payload region
// changes, behind the payload tag byte (the "flag"):
//
//	0x03 | algo byte | uvarint rawLen | compressed bytes
//
// where the compressed bytes inflate to a normal tagged payload (0x00
// JSON, 0x01 typed, or 0x02 ext) of exactly rawLen bytes. Payloads below
// compressMinSize keep their plain tag — small control frames pay zero
// compression CPU — as do payloads that fail to shrink.
//
// The name travels through the same hello codec-preference list as every
// other codec, so old peers silently land on an uncompressed codec; and
// because ANY binary-family decoder understands tag 0x03, a decoded
// compressed payload can be re-framed onto an uncompressed binary
// connection without re-encoding. Corrupt or truncated compressed input
// fails in DecodePayload — one message, never the connection.

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"io"
	"strings"
	"sync"
)

// compressMinSize is the payload-size threshold below which compressed
// codecs ship the plain tagged payload: control frames and small replies
// never pay flate CPU.
const compressMinSize = 512

// Compression algorithm bytes carried after the 0x03 tag.
const algoFlate = 0x01

// AlgoFlate is the stdlib DEFLATE algorithm, the only one currently
// registered. The name appears in codec names ("binary2+flate") and in
// ParseCodecs specs.
const AlgoFlate = "flate"

func algoByte(algo string) (byte, bool) {
	if algo == AlgoFlate {
		return algoFlate, true
	}
	return 0, false
}

// Compressed wraps a binary-family codec with negotiated per-frame
// compression under the given algorithm ("flate"). The JSON codec cannot
// be wrapped: it is the negotiation floor old peers rely on and must stay
// byte-identical to the pre-codec protocol.
func Compressed(inner Codec, algo string) (Codec, error) {
	if _, ok := algoByte(algo); !ok {
		return nil, fmt.Errorf("wire: unknown compression algo %q (want %s)", algo, AlgoFlate)
	}
	bc, ok := inner.(binaryCodec)
	if !ok {
		return nil, fmt.Errorf("wire: codec %q cannot carry compression: only the binary family has a payload tag for it", inner.Name())
	}
	if bc.algo != "" {
		return nil, fmt.Errorf("wire: codec %q is already compressed", bc.Name())
	}
	bc.algo = algo
	return bc, nil
}

var flateWriterPool = sync.Pool{New: func() any {
	w, _ := flate.NewWriter(io.Discard, flate.BestSpeed)
	return w
}}

var flateReaderPool = sync.Pool{New: func() any {
	return flate.NewReader(bytes.NewReader(nil))
}}

// deflate compresses src and appends the result to dst.
func deflate(dst, src []byte) ([]byte, error) {
	var buf bytes.Buffer
	buf.Grow(len(src) / 2)
	w := flateWriterPool.Get().(*flate.Writer)
	defer flateWriterPool.Put(w)
	w.Reset(&buf)
	if _, err := w.Write(src); err != nil {
		return dst, err
	}
	if err := w.Close(); err != nil {
		return dst, err
	}
	return append(dst, buf.Bytes()...), nil
}

// inflatePayload decodes a compressed payload region (everything after
// the 0x03 tag): algo byte, uvarint raw length, compressed stream. The
// claimed raw length is capped at MaxFrame before any allocation — a
// decompression bomb is rejected, not inflated — and the stream must
// reproduce exactly that many bytes.
func inflatePayload(b []byte) ([]byte, error) {
	if len(b) < 2 {
		return nil, fmt.Errorf("truncated compressed payload (%d bytes)", len(b))
	}
	if b[0] != algoFlate {
		return nil, fmt.Errorf("unknown compression algo byte 0x%02x", b[0])
	}
	rawLen, n := binary.Uvarint(b[1:])
	if n <= 0 {
		return nil, fmt.Errorf("truncated compressed payload: bad raw length")
	}
	if rawLen == 0 || rawLen > MaxFrame {
		return nil, fmt.Errorf("compressed payload claims %d raw bytes (cap %d)", rawLen, MaxFrame)
	}
	r := flateReaderPool.Get().(io.ReadCloser)
	defer flateReaderPool.Put(r)
	if err := r.(flate.Resetter).Reset(bytes.NewReader(b[1+n:]), nil); err != nil {
		return nil, err
	}
	// Read one byte past the claimed length: a stream holding more than
	// it declared is as corrupt as one holding less.
	out := make([]byte, rawLen+1)
	total := 0
	for total < len(out) {
		n, err := r.Read(out[total:])
		total += n
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("inflate: %w", err)
		}
	}
	if uint64(total) != rawLen {
		return nil, fmt.Errorf("compressed payload inflated to %d bytes, claimed %d", total, rawLen)
	}
	return out[:rawLen], nil
}

// splitCodecName splits "binary2+flate" into base and algo ("" when the
// name carries none).
func splitCodecName(name string) (base, algo string) {
	if i := strings.IndexByte(name, '+'); i >= 0 {
		return name[:i], name[i+1:]
	}
	return name, ""
}
