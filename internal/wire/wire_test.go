package wire

import (
	"bytes"
	"encoding/binary"
	"io"
	"strings"
	"testing"
	"testing/quick"

	"actyp/internal/pool"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	env, err := NewEnvelope(TypeQuery, 7, QueryRequest{Text: "punch.rsrc.arch = sun", TTL: 3, Visited: []string{"pm-a"}})
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteFrame(&buf, env); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Type != TypeQuery || got.ID != 7 {
		t.Errorf("envelope = %+v", got)
	}
	var req QueryRequest
	if err := got.Decode(&req); err != nil {
		t.Fatal(err)
	}
	if req.Text != "punch.rsrc.arch = sun" || req.TTL != 3 || len(req.Visited) != 1 {
		t.Errorf("payload = %+v", req)
	}
}

func TestFrameStream(t *testing.T) {
	var buf bytes.Buffer
	for i := uint64(0); i < 5; i++ {
		env, err := NewEnvelope(TypePing, i, struct{}{})
		if err != nil {
			t.Fatal(err)
		}
		if err := WriteFrame(&buf, env); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(0); i < 5; i++ {
		env, err := ReadFrame(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if env.ID != i {
			t.Errorf("frame %d out of order: id %d", i, env.ID)
		}
	}
	if _, err := ReadFrame(&buf); err != io.EOF {
		t.Errorf("exhausted stream should EOF, got %v", err)
	}
}

func TestReadFrameRejectsBadLengths(t *testing.T) {
	// Zero length.
	var zero bytes.Buffer
	zero.Write([]byte{0, 0, 0, 0})
	if _, err := ReadFrame(&zero); err == nil {
		t.Error("zero-length frame should fail")
	}
	// Oversized length.
	var huge bytes.Buffer
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], MaxFrame+1)
	huge.Write(hdr[:])
	if _, err := ReadFrame(&huge); err == nil {
		t.Error("oversized frame should fail")
	}
	// Truncated body.
	var trunc bytes.Buffer
	binary.BigEndian.PutUint32(hdr[:], 100)
	trunc.Write(hdr[:])
	trunc.WriteString("short")
	if _, err := ReadFrame(&trunc); err == nil {
		t.Error("truncated body should fail")
	}
	// Valid length, invalid JSON.
	var garbage bytes.Buffer
	body := []byte("not json!!")
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	garbage.Write(hdr[:])
	garbage.Write(body)
	if _, err := ReadFrame(&garbage); err == nil {
		t.Error("garbage JSON should fail")
	}
	// Envelope without a type.
	var untyped bytes.Buffer
	body = []byte(`{"id":1}`)
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	untyped.Write(hdr[:])
	untyped.Write(body)
	if _, err := ReadFrame(&untyped); err == nil || !strings.Contains(err.Error(), "without type") {
		t.Errorf("untyped envelope err = %v", err)
	}
}

func TestWriteFrameRejectsOversized(t *testing.T) {
	big := strings.Repeat("x", MaxFrame)
	env, err := NewEnvelope(TypeQuery, 1, QueryRequest{Text: big})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteFrame(&buf, env); err == nil {
		t.Error("oversized frame should fail to write")
	}
}

func TestDecodeErrors(t *testing.T) {
	env := &Envelope{Type: TypeQuery}
	var req QueryRequest
	if err := env.Decode(&req); err == nil {
		t.Error("empty payload should fail")
	}
	env.Payload = []byte(`{"text": 42}`) // wrong type
	if err := env.Decode(&req); err == nil {
		t.Error("mismatched payload should fail")
	}
}

func TestQueryReplyCarriesLease(t *testing.T) {
	lease := &pool.Lease{ID: "p#0:1", Machine: "m0001", Addr: "10.0.0.1", ExecUnitPort: 7000, AccessKey: "k"}
	env, err := NewEnvelope(TypeQuery, 1, QueryReply{Lease: lease, Fragments: 2, Succeeded: 1})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteFrame(&buf, env); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var reply QueryReply
	if err := got.Decode(&reply); err != nil {
		t.Fatal(err)
	}
	if reply.Lease == nil || reply.Lease.Machine != "m0001" || reply.Fragments != 2 {
		t.Errorf("reply = %+v", reply)
	}
}

// Property: every well-formed envelope survives a write/read round trip.
func TestFrameRoundTripProperty(t *testing.T) {
	f := func(id uint64, text string, ttl uint8) bool {
		env, err := NewEnvelope(TypeQuery, id, QueryRequest{Text: text, TTL: int(ttl)})
		if err != nil {
			return false
		}
		var buf bytes.Buffer
		if err := WriteFrame(&buf, env); err != nil {
			return false
		}
		got, err := ReadFrame(&buf)
		if err != nil {
			return false
		}
		var req QueryRequest
		if err := got.Decode(&req); err != nil {
			return false
		}
		return got.ID == id && req.Text == text && req.TTL == int(ttl)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
