package wire

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
)

// Codec negotiation is one round trip, spent once per connection:
//
//	client                                server
//	  | -- hello {codecs: [binary,json]} -->|   (always JSON)
//	  |<-- hello-ack {codec: binary} ------ |   (encoded in the chosen codec)
//	  | ==== all further frames in the chosen codec ====
//
// The server picks the first codec of its own preference list the client
// also offered, falling back to JSON. Either side that does not negotiate
// keeps the whole connection on JSON: an old client's first frame is a
// regular request (the server serves it and stays on JSON), and an old
// server answers the hello with an unknown-type error envelope (the client
// reads it as "no negotiation here" and stays on JSON). Mixed-version
// fleets therefore interoperate, at worst on the JSON floor.

// pickCodec returns the first of the server's preference list the client
// also offers, falling back to JSON (always implicitly supported).
func pickCodec(server []Codec, client []string) Codec {
	for _, c := range server {
		for _, name := range client {
			if c.Name() == name {
				return c
			}
		}
	}
	return JSON
}

// readFrameDetect reads one frame and decodes it by sniffing the codec
// from the body's first byte: binary bodies open with a magic byte no JSON
// document can start with. Only the handshake needs this — after it, each
// side knows its connection's codec.
func readFrameDetect(r io.Reader) (*Envelope, error) {
	bp, body, err := readFrameBody(r)
	if err != nil {
		return nil, err
	}
	defer putReadBuf(bp)
	codec := JSON
	if body[0] == binMagic {
		codec = Binary
	}
	env, err := codec.DecodeEnvelope(body)
	if err != nil {
		return nil, fmt.Errorf("wire: %w", err)
	}
	return env, nil
}

// negotiateClient advertises codecs on a fresh connection and returns the
// codec the server picked. A server that predates negotiation answers the
// hello with an error envelope; that downgrades the connection to JSON
// rather than failing it.
func negotiateClient(conn net.Conn, codecs []Codec) (Codec, error) {
	hello := &Envelope{Type: TypeHello, Msg: Hello{Codecs: codecNames(codecs)}}
	if err := jsonFramer.WriteFrame(conn, hello); err != nil {
		return nil, err
	}
	reply, err := readFrameDetect(conn)
	if err != nil {
		return nil, err
	}
	if reply.Type != TypeHelloAck {
		return JSON, nil // old server: the hello bounced as an app-level reply
	}
	// From here the server HAS negotiated and already switched its side to
	// the acked codec — silently "falling back" to JSON would desync the
	// two ends, so a bad ack fails the connection instead.
	chosen, _, err := resolveAck(reply, codecs)
	return chosen, err
}

// resolveAck decodes a hello-ack and maps the server's pick back to one
// of the offered codecs. Shared by the normal handshake and the
// piggybacked one-shot path so negotiation semantics cannot fork.
func resolveAck(reply *Envelope, codecs []Codec) (Codec, HelloAck, error) {
	var ack HelloAck
	if err := reply.Decode(&ack); err != nil {
		return nil, ack, fmt.Errorf("bad hello-ack: %w", err)
	}
	for _, c := range codecs {
		if c.Name() == ack.Codec {
			return c, ack, nil
		}
	}
	return nil, ack, fmt.Errorf("server picked codec %q, which was not offered", ack.Codec)
}

// CallPiggyback performs a one-shot exchange on a fresh connection: the
// hello advertises codecs AND carries the first request, so the exchange
// costs a single round trip — the reply, in the negotiated codec, arrives
// right behind the hello-ack. This is the path for rare throwaway
// connections (proxy pool spawns) that previously had to choose between
// negotiating (an extra round trip) and pinning themselves to the JSON
// floor.
//
// Against a server that does not negotiate (a pre-codec build), the hello
// bounces as an application-level reply and the embedded request was
// never seen, so the call transparently re-sends it as a plain JSON frame
// on the same connection — one extra round trip, exactly the old
// behaviour. Failures the server reports come back as *RemoteError; the
// caller owns the connection's lifecycle.
func CallPiggyback(conn net.Conn, codecs []Codec, req *Envelope) (*Envelope, error) {
	if codecs == nil {
		codecs = DefaultCodecs()
	}
	if req.ID == 0 {
		// The hello itself travels with id 0; the request needs its own id
		// so the fallback path can tell their replies apart.
		req.ID = 1
	}
	first := &HelloFirst{Type: req.Type, ID: req.ID, Payload: json.RawMessage(req.Payload)}
	if len(first.Payload) == 0 && req.Msg != nil {
		raw, err := json.Marshal(req.Msg)
		if err != nil {
			return nil, fmt.Errorf("%w: marshal %s payload: %v", ErrEncode, req.Type, err)
		}
		first.Payload = raw
	}
	hello := &Envelope{Type: TypeHello, Msg: Hello{Codecs: codecNames(codecs), First: first}}
	if err := jsonFramer.WriteFrame(conn, hello); err != nil {
		return nil, err
	}
	reply, err := readFrameDetect(conn)
	if err != nil {
		return nil, err
	}
	if reply.Type != TypeHelloAck {
		// Old server: the hello bounced (usually as an error envelope for
		// the hello's own id) and the piggybacked request was never
		// dispatched. Fall back to the JSON floor on the same connection.
		if reply.ID == req.ID {
			return finishPiggyback(reply)
		}
		if err := jsonFramer.WriteFrame(conn, req); err != nil {
			return nil, err
		}
		return awaitPiggyback(jsonFramer, conn, req.ID)
	}
	chosen, ack, err := resolveAck(reply, codecs)
	if err != nil {
		return nil, err
	}
	f := NewFramer(chosen)
	if !ack.First {
		// The server negotiates but predates Hello.First: its decoder
		// dropped the embedded request without a trace, so waiting for its
		// reply would hang forever. Re-send as an ordinary frame in the
		// codec just negotiated.
		if err := f.WriteFrame(conn, req); err != nil {
			return nil, err
		}
	}
	return awaitPiggyback(f, conn, req.ID)
}

// awaitPiggyback reads frames until the one correlated to the piggybacked
// request arrives.
func awaitPiggyback(f *Framer, conn net.Conn, id uint64) (*Envelope, error) {
	for {
		reply, err := f.ReadFrame(conn)
		if err != nil {
			return nil, err
		}
		if reply.ID != id {
			continue // e.g. the old server's error bounce for the hello
		}
		return finishPiggyback(reply)
	}
}

func finishPiggyback(reply *Envelope) (*Envelope, error) {
	if reply.Type == TypeError {
		var e ErrorReply
		if err := reply.Decode(&e); err != nil {
			return nil, err
		}
		return nil, &RemoteError{Message: e.Message}
	}
	return reply, nil
}
