package wire

import (
	"fmt"
	"io"
	"net"
)

// Codec negotiation is one round trip, spent once per connection:
//
//	client                                server
//	  | -- hello {codecs: [binary,json]} -->|   (always JSON)
//	  |<-- hello-ack {codec: binary} ------ |   (encoded in the chosen codec)
//	  | ==== all further frames in the chosen codec ====
//
// The server picks the first codec of its own preference list the client
// also offered, falling back to JSON. Either side that does not negotiate
// keeps the whole connection on JSON: an old client's first frame is a
// regular request (the server serves it and stays on JSON), and an old
// server answers the hello with an unknown-type error envelope (the client
// reads it as "no negotiation here" and stays on JSON). Mixed-version
// fleets therefore interoperate, at worst on the JSON floor.

// pickCodec returns the first of the server's preference list the client
// also offers, falling back to JSON (always implicitly supported).
func pickCodec(server []Codec, client []string) Codec {
	for _, c := range server {
		for _, name := range client {
			if c.Name() == name {
				return c
			}
		}
	}
	return JSON
}

// readFrameDetect reads one frame and decodes it by sniffing the codec
// from the body's first byte: binary bodies open with a magic byte no JSON
// document can start with. Only the handshake needs this — after it, each
// side knows its connection's codec.
func readFrameDetect(r io.Reader) (*Envelope, error) {
	bp, body, err := readFrameBody(r)
	if err != nil {
		return nil, err
	}
	defer putReadBuf(bp)
	codec := JSON
	if body[0] == binMagic {
		codec = Binary
	}
	env, err := codec.DecodeEnvelope(body)
	if err != nil {
		return nil, fmt.Errorf("wire: %w", err)
	}
	return env, nil
}

// negotiateClient advertises codecs on a fresh connection and returns the
// codec the server picked. A server that predates negotiation answers the
// hello with an error envelope; that downgrades the connection to JSON
// rather than failing it.
func negotiateClient(conn net.Conn, codecs []Codec) (Codec, error) {
	hello := &Envelope{Type: TypeHello, Msg: Hello{Codecs: codecNames(codecs)}}
	if err := jsonFramer.WriteFrame(conn, hello); err != nil {
		return nil, err
	}
	reply, err := readFrameDetect(conn)
	if err != nil {
		return nil, err
	}
	if reply.Type != TypeHelloAck {
		return JSON, nil // old server: the hello bounced as an app-level reply
	}
	// From here the server HAS negotiated and already switched its side to
	// the acked codec — silently "falling back" to JSON would desync the
	// two ends, so a bad ack fails the connection instead.
	var ack HelloAck
	if err := reply.Decode(&ack); err != nil {
		return nil, fmt.Errorf("bad hello-ack: %w", err)
	}
	for _, c := range codecs {
		if c.Name() == ack.Codec {
			return c, nil
		}
	}
	return nil, fmt.Errorf("server picked codec %q, which was not offered", ack.Codec)
}
