package wire

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// tickPayload is the streamed body of the test protocol.
type tickPayload struct {
	N int `json:"n"`
}

// startStreamServer serves connections with an echo handler plus a "tick"
// stream type: each subscription pushes `count` tick frames (paced by
// `every`, 0 = as fast as possible) and then idles until cancelled. It
// reports how many subscriptions saw Done close.
func startStreamServer(t *testing.T, count int, every time.Duration) (addr string, doneStreams *atomic.Int64, stop func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	doneStreams = &atomic.Int64{}
	var wg sync.WaitGroup
	var mu sync.Mutex
	var conns []net.Conn
	handler := func(env *Envelope) *Envelope {
		reply, err := NewEnvelope("echo", env.ID, echoPayload{Token: "ok"})
		if err != nil {
			return ErrorEnvelope(env.ID, err)
		}
		return reply
	}
	stream := func(env *Envelope, st *ServerStream) {
		for i := 0; i < count; i++ {
			ev, err := NewEnvelope("tick", st.ID(), tickPayload{N: i})
			if err != nil {
				return
			}
			if st.Send(ev) != nil {
				return
			}
			if every > 0 {
				select {
				case <-st.Done():
					return
				case <-time.After(every):
				}
			}
		}
		<-st.Done()
		doneStreams.Add(1)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			mu.Lock()
			conns = append(conns, conn)
			mu.Unlock()
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer conn.Close()
				ServeConnOpts(conn, ServeOptions{
					Window:  8,
					Streams: map[string]StreamHandler{"tick": stream},
				}, handler)
			}()
		}
	}()
	return ln.Addr().String(), doneStreams, func() {
		_ = ln.Close()
		mu.Lock()
		for _, c := range conns {
			_ = c.Close()
		}
		mu.Unlock()
		wg.Wait()
	}
}

func dialTest(t *testing.T, addr string) *Client {
	t.Helper()
	c := NewClient(func() (net.Conn, error) { return net.Dial("tcp", addr) }, 5*time.Second)
	t.Cleanup(func() { _ = c.Close() })
	return c
}

// TestStreamDelivery subscribes and receives every pushed frame in order
// while regular calls keep round-tripping on the same connection.
func TestStreamDelivery(t *testing.T) {
	addr, _, stop := startStreamServer(t, 50, 0)
	defer stop()
	c := dialTest(t, addr)

	s, err := c.Stream("tick", nil, 128)
	if err != nil {
		t.Fatalf("stream: %v", err)
	}
	defer s.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	for i := 0; i < 50; i++ {
		env, err := s.Recv(ctx)
		if err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		var p tickPayload
		if err := env.Decode(&p); err != nil {
			t.Fatalf("decode %d: %v", i, err)
		}
		if p.N != i {
			t.Fatalf("tick %d arrived out of order as %d", i, p.N)
		}
		if i%10 == 0 {
			if _, err := c.Call("echo", echoPayload{Token: "x"}); err != nil {
				t.Fatalf("interleaved call: %v", err)
			}
		}
	}
}

// TestStreamCloseCancelsServer proves a client Close reaches the server
// handler as a Done signal, so subscriptions do not leak goroutines.
func TestStreamCloseCancelsServer(t *testing.T) {
	addr, done, stop := startStreamServer(t, 1, 0)
	defer stop()
	c := dialTest(t, addr)

	s, err := c.Stream("tick", nil, 8)
	if err != nil {
		t.Fatalf("stream: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := s.Recv(ctx); err != nil {
		t.Fatalf("recv: %v", err)
	}
	_ = s.Close()
	deadline := time.Now().Add(5 * time.Second)
	for done.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("server stream never observed the cancel")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if _, err := s.Recv(ctx); !errors.Is(err, ErrStreamEnded) {
		t.Fatalf("recv after close: %v, want ErrStreamEnded", err)
	}
}

// TestStreamOverflowFailsConsumerNotConnection floods a tiny client buffer
// without draining it: the stream must die with ErrStreamOverflow while
// calls on the same connection keep working.
func TestStreamOverflowFailsConsumerNotConnection(t *testing.T) {
	addr, _, stop := startStreamServer(t, 500, 0)
	defer stop()
	c := dialTest(t, addr)

	s, err := c.Stream("tick", nil, 4)
	if err != nil {
		t.Fatalf("stream: %v", err)
	}
	defer s.Close()
	// Wait for the overflow, draining nothing; then drain and expect the
	// terminal error.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	var last error
	for {
		_, err := s.Recv(ctx)
		if err != nil {
			last = err
			break
		}
	}
	if !errors.Is(last, ErrStreamOverflow) {
		t.Fatalf("stream died with %v, want ErrStreamOverflow", last)
	}
	if _, err := c.Call("echo", echoPayload{Token: "alive"}); err != nil {
		t.Fatalf("connection should survive a stream overflow: %v", err)
	}
}

// TestStreamUnknownTypeBounces subscribes to a server that serves no
// streams: the frame dispatches as a regular request and the error reply
// surfaces through Recv as a RemoteError — exactly what a pre-stream
// server answers, and what the watch client keys its poll fallback on.
func TestStreamUnknownTypeBounces(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				// No Streams configured: a real dispatcher answers types it
				// does not know with an error reply.
				ServeConn(conn, 4, func(env *Envelope) *Envelope {
					return ErrorEnvelope(env.ID, fmt.Errorf("unknown message type %q", env.Type))
				})
			}()
		}
	}()
	c := dialTest(t, ln.Addr().String())

	s, err := c.Stream("tick", tickPayload{}, 8)
	if err != nil {
		t.Fatalf("stream: %v", err)
	}
	defer s.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_, err = s.Recv(ctx)
	var remote *RemoteError
	if !errors.As(err, &remote) {
		t.Fatalf("recv = %v, want RemoteError", err)
	}
}

// TestStreamFailsOnConnectionLoss kills the server mid-stream and expects
// the consumer to observe ErrConnLost after the buffered frames drain.
func TestStreamFailsOnConnectionLoss(t *testing.T) {
	addr, _, stop := startStreamServer(t, 5, 0)
	c := dialTest(t, addr)

	s, err := c.Stream("tick", nil, 64)
	if err != nil {
		t.Fatalf("stream: %v", err)
	}
	defer s.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if _, err := s.Recv(ctx); err != nil {
		t.Fatalf("first recv: %v", err)
	}
	stop() // server gone: connection dies under the stream
	for {
		_, err := s.Recv(ctx)
		if err == nil {
			continue
		}
		if !errors.Is(err, ErrConnLost) {
			t.Fatalf("stream died with %v, want ErrConnLost", err)
		}
		return
	}
}

// TestConcurrentStreamsAndCalls races several subscriptions and call
// traffic on one connection; run under -race this shakes out routing and
// teardown data races.
func TestConcurrentStreamsAndCalls(t *testing.T) {
	addr, _, stop := startStreamServer(t, 30, 0)
	defer stop()
	c := dialTest(t, addr)

	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s, err := c.Stream("tick", nil, 64)
			if err != nil {
				errs <- err
				return
			}
			defer s.Close()
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			for n := 0; n < 30; n++ {
				if _, err := s.Recv(ctx); err != nil {
					errs <- fmt.Errorf("recv %d: %w", n, err)
					return
				}
			}
		}()
	}
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for n := 0; n < 20; n++ {
				if _, err := c.Call("echo", echoPayload{Token: "t"}); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
