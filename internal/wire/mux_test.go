package wire

import (
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"
)

// echoPayload is the round-tripped body of the test protocol: each request
// carries a unique token the handler must echo back, so any reply
// delivered to the wrong caller is caught immediately.
type echoPayload struct {
	Token string `json:"token"`
	Sleep int    `json:"sleepMs,omitempty"`
}

// startEchoServer serves every accepted connection through ServeConn with
// a handler that echoes the payload after an optional per-request delay.
func startEchoServer(t *testing.T, window int) (addr string, stop func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	var mu sync.Mutex
	var conns []net.Conn
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			mu.Lock()
			conns = append(conns, conn)
			mu.Unlock()
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer conn.Close()
				ServeConn(conn, window, func(env *Envelope) *Envelope {
					var p echoPayload
					if err := env.Decode(&p); err != nil {
						bad, _ := NewEnvelope(TypeError, env.ID, ErrorReply{Message: err.Error()})
						return bad
					}
					if p.Sleep > 0 {
						time.Sleep(time.Duration(p.Sleep) * time.Millisecond)
					}
					reply, err := NewEnvelope("echo", env.ID, p)
					if err != nil {
						bad, _ := NewEnvelope(TypeError, env.ID, ErrorReply{Message: err.Error()})
						return bad
					}
					return reply
				})
			}()
		}
	}()
	return ln.Addr().String(), func() {
		_ = ln.Close()
		mu.Lock()
		for _, c := range conns {
			_ = c.Close()
		}
		mu.Unlock()
		wg.Wait()
	}
}

// TestServeConnInterleavesReplies proves out-of-order service on one raw
// connection: a slow request is written first, a fast one second, and the
// fast reply comes back first because the worker pool dispatches both.
func TestServeConnInterleavesReplies(t *testing.T) {
	addr, stop := startEchoServer(t, 4)
	defer stop()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	slow, err := NewEnvelope("echo", 1, echoPayload{Token: "slow", Sleep: 300})
	if err != nil {
		t.Fatal(err)
	}
	fast, err := NewEnvelope("echo", 2, echoPayload{Token: "fast"})
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteFrame(conn, slow); err != nil {
		t.Fatal(err)
	}
	if err := WriteFrame(conn, fast); err != nil {
		t.Fatal(err)
	}
	first, err := ReadFrame(conn)
	if err != nil {
		t.Fatal(err)
	}
	if first.ID != 2 {
		t.Errorf("first reply id = %d, want 2 (fast request must overtake the slow one)", first.ID)
	}
	second, err := ReadFrame(conn)
	if err != nil {
		t.Fatal(err)
	}
	if second.ID != 1 {
		t.Errorf("second reply id = %d, want 1", second.ID)
	}
}

// TestServeConnWindowBoundsConcurrency drives more requests than the
// window allows and checks the handler's observed concurrency never
// exceeds it (the mux's backpressure contract).
func TestServeConnWindowBoundsConcurrency(t *testing.T) {
	const window = 3
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	var mu sync.Mutex
	inFlight, peak := 0, 0
	done := make(chan struct{})
	go func() {
		defer close(done)
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		ServeConn(conn, window, func(env *Envelope) *Envelope {
			mu.Lock()
			inFlight++
			if inFlight > peak {
				peak = inFlight
			}
			mu.Unlock()
			time.Sleep(5 * time.Millisecond)
			mu.Lock()
			inFlight--
			mu.Unlock()
			return &Envelope{Type: "echo", ID: env.ID}
		})
	}()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	const n = 20
	go func() {
		for i := 1; i <= n; i++ {
			env, _ := NewEnvelope("echo", uint64(i), echoPayload{Token: "x"})
			if err := WriteFrame(conn, env); err != nil {
				return
			}
		}
	}()
	seen := map[uint64]bool{}
	for i := 0; i < n; i++ {
		reply, err := ReadFrame(conn)
		if err != nil {
			t.Fatal(err)
		}
		if seen[reply.ID] {
			t.Fatalf("duplicate reply id %d", reply.ID)
		}
		seen[reply.ID] = true
	}
	conn.Close()
	<-done
	if peak > window {
		t.Errorf("peak in-flight = %d, want <= window %d", peak, window)
	}
	if peak < 2 {
		t.Errorf("peak in-flight = %d; requests never overlapped", peak)
	}
}

// TestClientCorrelatesConcurrentCalls is the -race stress: many goroutines
// keep calls in flight on ONE connection, every reply must carry its own
// caller's unique token.
func TestClientCorrelatesConcurrentCalls(t *testing.T) {
	addr, stop := startEchoServer(t, 8)
	defer stop()
	c := NewClient(func() (net.Conn, error) { return net.Dial("tcp", addr) }, 5*time.Second)
	defer c.Close()

	const callers, calls = 16, 25
	var wg sync.WaitGroup
	for g := 0; g < callers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < calls; i++ {
				token := fmt.Sprintf("caller-%d-call-%d", g, i)
				reply, err := c.Call("echo", echoPayload{Token: token})
				if err != nil {
					t.Errorf("%s: %v", token, err)
					return
				}
				var p echoPayload
				if err := reply.Decode(&p); err != nil {
					t.Errorf("%s: %v", token, err)
					return
				}
				if p.Token != token {
					t.Errorf("got token %q, want %q: replies crossed callers", p.Token, token)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestClientTimeoutLeavesConnectionUsable cancels one slow call and checks
// the connection still serves later calls (the late reply is discarded).
func TestClientTimeoutLeavesConnectionUsable(t *testing.T) {
	addr, stop := startEchoServer(t, 4)
	defer stop()
	c := NewClient(func() (net.Conn, error) { return net.Dial("tcp", addr) }, 50*time.Millisecond)
	defer c.Close()

	if _, err := c.Call("echo", echoPayload{Token: "warm"}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Call("echo", echoPayload{Token: "slow", Sleep: 400}); err == nil {
		t.Fatal("slow call should time out")
	}
	// The connection was not torn down; a fresh call still works.
	reply, err := c.Call("echo", echoPayload{Token: "after"})
	if err != nil {
		t.Fatal(err)
	}
	var p echoPayload
	if err := reply.Decode(&p); err != nil {
		t.Fatal(err)
	}
	if p.Token != "after" {
		t.Errorf("token = %q (late slow reply leaked into a later call)", p.Token)
	}
}

// TestClientOversizedCallFailsAlone sends a payload past MaxFrame: the
// rejection happens before any bytes reach the wire, so only the oversized
// call fails — calls in flight and calls afterwards ride the same healthy
// connection.
func TestClientOversizedCallFailsAlone(t *testing.T) {
	addr, stop := startEchoServer(t, 4)
	defer stop()
	c := NewClient(func() (net.Conn, error) { return net.Dial("tcp", addr) }, 5*time.Second)
	defer c.Close()

	slowDone := make(chan error, 1)
	go func() {
		_, err := c.Call("echo", echoPayload{Token: "slow", Sleep: 200})
		slowDone <- err
	}()
	time.Sleep(20 * time.Millisecond) // let the slow call get in flight

	big := strings.Repeat("x", MaxFrame+1)
	if _, err := c.Call("echo", echoPayload{Token: big}); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversized call err = %v, want ErrFrameTooLarge", err)
	}
	if err := <-slowDone; err != nil {
		t.Fatalf("in-flight call killed by oversized sibling: %v", err)
	}
	if _, err := c.Call("echo", echoPayload{Token: "after"}); err != nil {
		t.Fatalf("connection unusable after oversized call: %v", err)
	}
}

// TestClientReconnectsAfterServerRestart kills the server under a client,
// restarts one on the same address, and checks the client redials: the
// call issued across the outage fails, later calls succeed again.
func TestClientReconnectsAfterServerRestart(t *testing.T) {
	addr, stop := startEchoServer(t, 4)
	c := NewClient(func() (net.Conn, error) { return net.Dial("tcp", addr) }, 2*time.Second)
	defer c.Close()
	if _, err := c.Call("echo", echoPayload{Token: "before"}); err != nil {
		t.Fatal(err)
	}

	stop() // server gone: in-flight and near-term calls fail

	ln, err := net.Listen("tcp", addr) // reclaim the same address
	if err != nil {
		t.Fatalf("relisten %s: %v", addr, err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				ServeConn(conn, 4, func(env *Envelope) *Envelope {
					var p echoPayload
					_ = env.Decode(&p)
					reply, _ := NewEnvelope("echo", env.ID, p)
					return reply
				})
			}()
		}
	}()

	// The client may need one call to notice the dead connection, then
	// must recover by redialing.
	deadline := time.Now().Add(5 * time.Second)
	for {
		reply, err := c.Call("echo", echoPayload{Token: "after"})
		if err == nil {
			var p echoPayload
			if err := reply.Decode(&p); err != nil {
				t.Fatal(err)
			}
			if p.Token != "after" {
				t.Fatalf("token = %q", p.Token)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("client never reconnected: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
