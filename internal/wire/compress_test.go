package wire

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math/rand"
	"net"
	"strings"
	"sync"
	"testing"
	"time"
)

// compCodec builds the binary2+flate codec or fails the test.
func compCodec(t *testing.T) Codec {
	t.Helper()
	c, err := Compressed(Binary2, AlgoFlate)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// bigToken is a compressible payload body well above compressMinSize.
func bigToken(n int) string {
	return strings.Repeat("the quick brown fox jumps over the lazy dog ", n/44+1)[:n]
}

func TestCompressedConstruction(t *testing.T) {
	c := compCodec(t)
	if c.Name() != "binary2+flate" {
		t.Errorf("name = %q", c.Name())
	}
	if _, err := Compressed(JSON, AlgoFlate); err == nil {
		t.Error("wrapping the JSON floor should fail")
	}
	if _, err := Compressed(c, AlgoFlate); err == nil {
		t.Error("double wrapping should fail")
	}
	if _, err := Compressed(Binary2, "zstd"); err == nil {
		t.Error("unknown algo should fail")
	}
	if _, err := CodecByName("binary2+flate"); err != nil {
		t.Errorf("CodecByName: %v", err)
	}
}

// TestCompressedRoundTripShrinks: a compressible payload above the
// threshold round-trips exactly and costs fewer frame bytes than plain
// binary2; the v2 envelope extensions survive.
func TestCompressedRoundTripShrinks(t *testing.T) {
	comp := compCodec(t)
	env := &Envelope{
		Type:     "echo",
		ID:       99,
		From:     "bench",
		Deadline: 12345678,
		Msg:      echoPayload{Token: bigToken(4096)},
	}
	plain, err := Binary2.AppendEnvelope(nil, env)
	if err != nil {
		t.Fatal(err)
	}
	small, err := comp.AppendEnvelope(nil, env)
	if err != nil {
		t.Fatal(err)
	}
	if len(small) >= len(plain) {
		t.Fatalf("compressed body %d B >= plain %d B", len(small), len(plain))
	}
	got, err := comp.DecodeEnvelope(small)
	if err != nil {
		t.Fatal(err)
	}
	if got.Type != env.Type || got.ID != env.ID || got.From != env.From || got.Deadline != env.Deadline {
		t.Fatalf("envelope fields: %+v", got)
	}
	var p echoPayload
	if err := comp.DecodePayload(got.Payload, &p); err != nil {
		t.Fatal(err)
	}
	if p.Token != bigToken(4096) {
		t.Error("payload corrupted in transit")
	}
}

// TestCompressThreshold: payloads under compressMinSize (every control
// frame) encode byte-identically to plain binary2 — zero compression CPU
// and zero format drift for the small-frame hot path.
func TestCompressThreshold(t *testing.T) {
	comp := compCodec(t)
	env := &Envelope{Type: TypePing, ID: 7, Msg: echoPayload{Token: "small"}}
	plain, err := Binary2.AppendEnvelope(nil, env)
	if err != nil {
		t.Fatal(err)
	}
	got, err := comp.AppendEnvelope(nil, env)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(plain, got) {
		t.Errorf("sub-threshold frame differs from plain binary2:\n%x\n%x", plain, got)
	}
}

// TestIncompressibleKeepsPlainTag: a payload region that does not shrink
// ships under its plain tag instead of paying the compressed framing
// overhead; regions already tagged 0x03 pass through untouched.
func TestIncompressibleKeepsPlainTag(t *testing.T) {
	bc, ok := compCodec(t).(binaryCodec)
	if !ok {
		t.Fatal("compressed codec is not a binaryCodec")
	}
	rng := rand.New(rand.NewSource(1))
	noise := make([]byte, 2048)
	rng.Read(noise)
	payload := append([]byte{binPayloadJSON}, noise...)
	got, err := bc.maybeCompress(bytes.Clone(payload), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(payload, got) {
		t.Errorf("incompressible payload rewritten: %d B -> %d B", len(payload), len(got))
	}
	tagged := append([]byte{binPayloadCompressed}, bytes.Repeat([]byte("aaaa"), 256)...)
	got, err = bc.maybeCompress(bytes.Clone(tagged), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(tagged, got) {
		t.Error("already-compressed payload was re-compressed")
	}
}

// TestUncompressedPeerDecodesCompressedTag: every binary-family decoder
// understands tag 0x03, so a payload re-framed from a compressed
// connection decodes on an uncompressed one.
func TestUncompressedPeerDecodesCompressedTag(t *testing.T) {
	comp := compCodec(t)
	env := &Envelope{Type: "echo", ID: 3, Msg: echoPayload{Token: bigToken(2048)}}
	body, err := comp.AppendEnvelope(nil, env)
	if err != nil {
		t.Fatal(err)
	}
	for _, dec := range []Codec{Binary, Binary2} {
		got, err := dec.DecodeEnvelope(body)
		if err != nil {
			t.Fatalf("%s: %v", dec.Name(), err)
		}
		var p echoPayload
		if err := dec.DecodePayload(got.Payload, &p); err != nil {
			t.Fatalf("%s: %v", dec.Name(), err)
		}
		if p.Token != bigToken(2048) {
			t.Errorf("%s: payload corrupted", dec.Name())
		}
	}
}

// compressedBody returns an encoded envelope whose payload region is
// compressed, plus the decoded payload bytes for corruption targets.
func compressedBody(t *testing.T) (body []byte, payload []byte) {
	t.Helper()
	comp := compCodec(t)
	env := &Envelope{Type: "echo", ID: 5, Msg: echoPayload{Token: bigToken(4096)}}
	body, err := comp.AppendEnvelope(nil, env)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := comp.DecodeEnvelope(body)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec.Payload) == 0 || dec.Payload[0] != binPayloadCompressed {
		t.Fatalf("payload not compressed (tag 0x%02x)", dec.Payload[0])
	}
	return body, dec.Payload
}

// TestCompressedTruncationAlwaysErrors: every proper prefix of a
// compressed payload fails the decode — never a silent partial value.
func TestCompressedTruncationAlwaysErrors(t *testing.T) {
	_, payload := compressedBody(t)
	for n := range payload {
		var p echoPayload
		if err := Binary2.DecodePayload(payload[:n], &p); err == nil {
			t.Fatalf("prefix of %d/%d bytes decoded", n, len(payload))
		}
	}
}

// TestCompressedCorruptionNeverPanics: random multi-byte flips across the
// whole frame body either error or decode; they never panic or
// over-allocate.
func TestCompressedCorruptionNeverPanics(t *testing.T) {
	body, _ := compressedBody(t)
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 2000; trial++ {
		corrupt := bytes.Clone(body)
		for k := 0; k < 1+rng.Intn(4); k++ {
			corrupt[rng.Intn(len(corrupt))] ^= byte(1 + rng.Intn(255))
		}
		env, err := Binary2.DecodeEnvelope(corrupt)
		if err != nil {
			continue
		}
		var p echoPayload
		_ = Binary2.DecodePayload(env.Payload, &p)
	}
}

// TestDecompressionBombRejected: a payload claiming a huge inflated size
// is rejected from the length field alone, before any allocation, and a
// stream lying about its length in either direction fails.
func TestDecompressionBombRejected(t *testing.T) {
	mk := func(rawLen uint64, stream []byte) []byte {
		b := []byte{binPayloadCompressed, algoFlate}
		b = binary.AppendUvarint(b, rawLen)
		return append(b, stream...)
	}
	inner, err := deflate(nil, append([]byte{binPayloadJSON}, []byte(`{"token":"x"}`)...))
	if err != nil {
		t.Fatal(err)
	}
	var p echoPayload
	if err := Binary2.DecodePayload(mk(MaxFrame+1, inner), &p); err == nil {
		t.Error("over-cap raw length accepted")
	}
	if err := Binary2.DecodePayload(mk(0, inner), &p); err == nil {
		t.Error("zero raw length accepted")
	}
	// Claimed length smaller than the real stream: over-length must fail.
	if err := Binary2.DecodePayload(mk(3, inner), &p); err == nil {
		t.Error("over-length stream accepted")
	}
	// Claimed length larger than the real stream: under-length must fail.
	if err := Binary2.DecodePayload(mk(100000, inner), &p); err == nil {
		t.Error("under-length stream accepted")
	}
	// Unknown algo byte.
	bad := mk(14, inner)
	bad[1] = 0x7f
	if err := Binary2.DecodePayload(bad, &p); err == nil {
		t.Error("unknown algo byte accepted")
	}
	// Nested compression: a stream inflating to another 0x03 region.
	nested, err := deflate(nil, mk(14, inner))
	if err != nil {
		t.Fatal(err)
	}
	payload := mk(uint64(len(mk(14, inner))), nested)
	if err := Binary2.DecodePayload(payload, &p); err == nil {
		t.Error("nested compression accepted")
	}
}

// TestCompressedInteropMixedFleet is the mixed-fleet acceptance sweep,
// run with concurrent callers so -race covers the compression pools:
// compressed peers negotiate flate only when both ends offer it, land on
// plain binary2 against uncompressed peers, and fall to JSON against a
// pre-codec server — large payloads flow correctly in every pairing.
func TestCompressedInteropMixedFleet(t *testing.T) {
	comp := compCodec(t)
	cases := []struct {
		name    string
		server  ServeOptions
		client  ClientOptions
		negName string
	}{
		{"both-compressed", ServeOptions{Window: 8, Codecs: []Codec{comp, Binary2, JSON}},
			ClientOptions{Codecs: []Codec{comp, Binary2, JSON}}, "binary2+flate"},
		{"old-server-new-client", ServeOptions{Window: 8, Codecs: []Codec{Binary2, Binary, JSON}},
			ClientOptions{Codecs: []Codec{comp, Binary2, JSON}}, "binary2"},
		{"new-server-old-client", ServeOptions{Window: 8, Codecs: []Codec{comp, Binary2, JSON}},
			ClientOptions{Codecs: []Codec{Binary2, JSON}}, "binary2"},
		{"pre-codec-server", ServeOptions{Window: 8, DisableNegotiation: true},
			ClientOptions{Codecs: []Codec{comp, JSON}}, "json"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			addr, stop := startEchoServerOpts(t, tc.server)
			defer stop()
			opts := tc.client
			opts.Timeout = 5 * time.Second
			c := NewClientOpts(echoDialer(addr), opts)
			defer c.Close()
			checkEcho(t, c, "warmup")
			if got := c.CodecName(); got != tc.negName {
				t.Fatalf("negotiated %q, want %q", got, tc.negName)
			}
			var wg sync.WaitGroup
			for g := 0; g < 4; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for i := 0; i < 10; i++ {
						checkEcho(t, c, fmt.Sprintf("caller%d-%s", g, bigToken(1500+i)))
					}
				}(g)
			}
			wg.Wait()
		})
	}
}

// TestCorruptCompressedFrameFailsOneMessage injects a truncated
// compressed payload into a live negotiated connection: the server must
// answer an error reply for that id and keep serving the frames behind
// it — a corrupt message costs one message, never the connection.
func TestCorruptCompressedFrameFailsOneMessage(t *testing.T) {
	comp := compCodec(t)
	addr, stop := startEchoServerOpts(t, ServeOptions{Window: 4, Codecs: []Codec{comp, JSON}})
	defer stop()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	// Handshake by hand: hello on the JSON floor, ack sniffed.
	jf := NewFramer(JSON)
	hello := &Envelope{Type: TypeHello, ID: 1, Msg: Hello{Codecs: []string{comp.Name()}}}
	if err := jf.WriteFrame(conn, hello); err != nil {
		t.Fatal(err)
	}
	ack, err := readFrameDetect(conn)
	if err != nil {
		t.Fatal(err)
	}
	chosen, _, err := resolveAck(ack, []Codec{comp, JSON})
	if err != nil {
		t.Fatal(err)
	}
	if chosen.Name() != comp.Name() {
		t.Fatalf("negotiated %q", chosen.Name())
	}

	// A valid compressed frame, truncated inside the flate stream: the
	// envelope header still decodes (type, id), the payload cannot.
	body, err := comp.AppendEnvelope(nil, &Envelope{Type: "echo", ID: 2, Msg: echoPayload{Token: bigToken(4096)}})
	if err != nil {
		t.Fatal(err)
	}
	body = body[:len(body)-7]
	var prefix [4]byte
	binary.BigEndian.PutUint32(prefix[:], uint32(len(body)))
	if _, err := conn.Write(append(prefix[:], body...)); err != nil {
		t.Fatal(err)
	}
	framer := NewFramer(comp)
	reply, err := framer.ReadFrame(conn)
	if err != nil {
		t.Fatalf("connection died on a corrupt payload: %v", err)
	}
	if reply.Type != TypeError || reply.ID != 2 {
		t.Fatalf("want an error reply for id 2, got %s id %d", reply.Type, reply.ID)
	}

	// The connection survives: a valid call still round-trips.
	if err := framer.WriteFrame(conn, &Envelope{Type: "echo", ID: 3, Msg: echoPayload{Token: bigToken(2048)}}); err != nil {
		t.Fatal(err)
	}
	reply, err = framer.ReadFrame(conn)
	if err != nil {
		t.Fatal(err)
	}
	if reply.Type != "echo" || reply.ID != 3 {
		t.Fatalf("got %s id %d", reply.Type, reply.ID)
	}
	var p echoPayload
	if err := reply.Decode(&p); err != nil {
		t.Fatal(err)
	}
	if p.Token != bigToken(2048) {
		t.Error("post-corruption echo corrupted")
	}
}
