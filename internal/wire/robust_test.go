package wire

import (
	"bytes"
	"encoding/binary"
	"io"
	"math/rand"
	"testing"
	"testing/quick"
)

// Property: ReadFrame never panics and always terminates on arbitrary
// byte streams — a hostile or corrupt peer cannot take the stage down.
func TestReadFrameNeverPanicsProperty(t *testing.T) {
	f := func(raw []byte) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("ReadFrame panicked on %x: %v", raw, r)
			}
		}()
		r := bytes.NewReader(raw)
		for {
			_, err := ReadFrame(r)
			if err != nil {
				return true // io.EOF or a parse error both terminate
			}
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: a frame truncated at any byte boundary yields an error, never
// a silent partial envelope.
func TestTruncatedFrameAlwaysErrorsProperty(t *testing.T) {
	env, err := NewEnvelope(TypeQuery, 42, QueryRequest{Text: "punch.rsrc.arch = sun"})
	if err != nil {
		t.Fatal(err)
	}
	var full bytes.Buffer
	if err := WriteFrame(&full, env); err != nil {
		t.Fatal(err)
	}
	raw := full.Bytes()
	for cut := 0; cut < len(raw); cut++ {
		if _, err := ReadFrame(bytes.NewReader(raw[:cut])); err == nil {
			t.Fatalf("truncation at %d/%d bytes read a frame", cut, len(raw))
		}
	}
	// The full frame still reads.
	if _, err := ReadFrame(bytes.NewReader(raw)); err != nil {
		t.Fatalf("full frame failed: %v", err)
	}
}

// Property: flipping one byte of a frame either fails cleanly or yields a
// well-formed envelope (when the flip lands in an uninterpreted region of
// the JSON); it never panics or reads beyond the frame.
func TestBitFlipRobustness(t *testing.T) {
	env, err := NewEnvelope(TypeRelease, 7, ReleaseRequest{})
	if err != nil {
		t.Fatal(err)
	}
	var full bytes.Buffer
	if err := WriteFrame(&full, env); err != nil {
		t.Fatal(err)
	}
	raw := full.Bytes()
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		mut := append([]byte(nil), raw...)
		i := rng.Intn(len(mut))
		mut[i] ^= byte(1 << rng.Intn(8))
		r := bytes.NewReader(mut)
		got, err := ReadFrame(r)
		if err != nil {
			continue
		}
		if got.Type == "" {
			t.Fatalf("trial %d: typeless envelope accepted", trial)
		}
	}
}

// Stream property: after a bad frame the reader position is undefined, but
// fresh well-formed frames on a fresh reader always parse — no shared
// state corruption.
func TestReaderStateIsolation(t *testing.T) {
	bad := make([]byte, 8)
	binary.BigEndian.PutUint32(bad, 4)
	copy(bad[4:], "!!!!")
	if _, err := ReadFrame(bytes.NewReader(bad)); err == nil {
		t.Fatal("garbage accepted")
	}
	env, err := NewEnvelope(TypePing, 1, struct{}{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteFrame(&buf, env); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFrame(&buf); err != nil {
		t.Fatalf("fresh frame failed after prior garbage: %v", err)
	}
	if _, err := ReadFrame(&buf); err != io.EOF {
		t.Fatalf("expected EOF, got %v", err)
	}
}
