// Package wire defines the message protocol the pipeline stages use when
// they are distributed across machines ("queries propagate from one stage
// to the next via TCP or UDP", Section 6). Frames are 4-byte big-endian
// length-prefixed envelope bodies; each envelope carries a message type, a
// correlation id, and a typed payload. The body encoding is pluggable: a
// Codec (JSON or the compact binary format) is negotiated per connection
// by the hello/hello-ack handshake, and peers that never negotiate — old
// builds, UDP datagrams — speak JSON, the compatibility floor.
package wire

import (
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"actyp/internal/pool"
	"actyp/internal/registry"
	"actyp/internal/shadow"
)

// MaxFrame bounds a frame's payload size; anything larger is rejected as
// corrupt or hostile.
const MaxFrame = 1 << 20

// ErrFrameTooLarge is wrapped by a framer's WriteFrame when a frame
// exceeds MaxFrame. The error precedes any bytes reaching the wire, so the
// connection is still healthy — Client keeps it open and fails only the
// oversized call.
var ErrFrameTooLarge = errors.New("wire: frame exceeds limit")

// Message types.
const (
	TypeQuery     = "query"      // QueryRequest -> QueryReply
	TypeRelease   = "release"    // ReleaseRequest -> ReleaseReply
	TypeRenew     = "renew"      // RenewRequest -> RenewReply (lease heartbeat)
	TypePing      = "ping"       // empty -> empty (liveness)
	TypeSpawnPool = "spawn-pool" // SpawnPoolRequest -> SpawnPoolReply (proxy server)
	TypeError     = "error"      // ErrorReply (any request can fail)
	TypeHello     = "hello"      // Hello -> HelloAck (codec negotiation, first frame only)
	TypeHelloAck  = "hello-ack"  // negotiation answer, encoded in the chosen codec
	TypeBusy      = "busy"       // BusyReply (request shed by overload control, never dispatched)
	TypeSelect    = "select"     // SelectRequest -> SelectReply (machine record batch)
	TypeRoute     = "route"      // RouteRequest -> RouteReply (domain-ownership table)

	// The watch family extends the protocol from request/reply to server
	// push: a watch subscribes the connection to the registry change
	// stream and the server then sends watch-events frames carrying the
	// subscribe envelope's id for as long as the subscription lives.
	// Like "busy" and "select", both types travel via the inline-string
	// envelope escape on binary connections, so an old peer decodes the
	// envelope fine and bounces the unknown type as an ordinary error
	// reply — which is exactly how a subscriber detects a pre-watch peer
	// and degrades to the poll fallback.
	TypeWatch        = "watch"         // WatchRequest -> WatchEvents stream (first frame acks)
	TypeWatchEvents  = "watch-events"  // server->client stream frame
	TypeStreamCancel = "stream-cancel" // client->server: stop the stream with this id
)

// Envelope is the frame body. On the write side the typed payload rides in
// Msg and is encoded by the connection's codec when the frame is written;
// on the read side Payload holds the raw payload bytes in the codec that
// framed them, and Decode routes through that codec.
//
// From and Deadline are the overload-control extensions: From names the
// requesting account or group (the admission-bucket key) and Deadline is
// the caller's absolute deadline in UnixNano (0 = none; work whose
// deadline has passed is shed with a Busy reply instead of dispatched).
// Both are optional JSON fields, so old JSON peers ignore them silently;
// the v1 binary codec has no room for them and drops both, which is why
// deadline-aware peers negotiate the "binary2" codec and fall back to
// no-deadline behaviour against older builds.
type Envelope struct {
	Type     string          `json:"type"`
	ID       uint64          `json:"id"`
	From     string          `json:"from,omitempty"`
	Deadline int64           `json:"deadline,omitempty"`
	Payload  json.RawMessage `json:"payload,omitempty"`

	// Msg is the typed payload awaiting encode. It is set by NewEnvelope
	// and consumed by the framing codec; it never travels as-is.
	Msg any `json:"-"`

	// codec is the codec that produced Payload (nil for hand-built
	// envelopes, which default to JSON).
	codec Codec
}

// SetDeadline stamps the caller's absolute deadline on the envelope; the
// zero time clears it.
func (e *Envelope) SetDeadline(t time.Time) {
	if t.IsZero() {
		e.Deadline = 0
		return
	}
	e.Deadline = t.UnixNano()
}

// Expired reports whether the envelope carries a deadline that has already
// passed at now. Envelopes without a deadline never expire.
func (e *Envelope) Expired(now time.Time) bool {
	return e.Deadline != 0 && now.UnixNano() > e.Deadline
}

// Hello is the client's codec advertisement, always sent as the first
// frame of a connection and always encoded in JSON so any server can read
// it. Codecs are listed in preference order. First, when present,
// piggybacks the connection's first request on the handshake: the server
// dispatches it immediately after picking the codec, and the reply (in
// the chosen codec) follows the hello-ack — a one-shot exchange costs one
// round trip instead of two. See CallPiggyback.
type Hello struct {
	Codecs []string    `json:"codecs"`
	First  *HelloFirst `json:"first,omitempty"`
}

// HelloFirst is the request embedded in a hello frame. The payload is
// JSON regardless of the advertised codecs — the hello itself must stay
// on the floor every server can read.
type HelloFirst struct {
	Type    string          `json:"type"`
	ID      uint64          `json:"id"`
	Payload json.RawMessage `json:"payload,omitempty"`
}

// HelloAck is the server's answer: the codec it picked, encoded in that
// codec (the client sniffs the body's first byte to read it). First
// echoes that a piggybacked first request was accepted for dispatch; a
// First-carrying client that gets an ack without it is talking to a
// server that negotiates but predates Hello.First (whose JSON decoder
// silently dropped the field), and must re-send the request as an
// ordinary frame instead of waiting for a reply that will never come.
type HelloAck struct {
	Codec string `json:"codec"`
	First bool   `json:"first,omitempty"`
}

// QueryRequest submits a (possibly composite) query in a named language.
type QueryRequest struct {
	Lang string `json:"lang,omitempty"` // "" means native
	Text string `json:"text"`
	// TTL and Visited carry the delegation state when a pool manager
	// forwards a basic query to a remote peer.
	TTL     int      `json:"ttl,omitempty"`
	Visited []string `json:"visited,omitempty"`
}

// QueryReply returns the reintegrated result.
type QueryReply struct {
	Lease     *pool.Lease     `json:"lease,omitempty"`
	Shadow    *shadow.Account `json:"shadow,omitempty"`
	Fragments int             `json:"fragments"`
	Succeeded int             `json:"succeeded"`
	ElapsedNS int64           `json:"elapsedNs"`
}

// ReleaseRequest returns a lease.
type ReleaseRequest struct {
	Lease  pool.Lease      `json:"lease"`
	Shadow *shadow.Account `json:"shadow,omitempty"`
}

// ReleaseReply acknowledges a release.
type ReleaseReply struct{}

// RenewRequest extends a lease's lifetime (clients of TTL-enabled
// services heartbeat long runs with it).
type RenewRequest struct {
	Lease pool.Lease `json:"lease"`
}

// RenewReply acknowledges a renewal.
type RenewReply struct{}

// SpawnPoolRequest asks a proxy server to start a pool instance on its
// machine.
type SpawnPoolRequest struct {
	Signature  string `json:"signature"`
	Identifier string `json:"identifier"`
	Instance   int    `json:"instance"`
	Objective  string `json:"objective,omitempty"`
}

// SpawnPoolReply reports where the new pool listens.
type SpawnPoolReply struct {
	Instance string `json:"instance"` // unique instance id
	Addr     string `json:"addr"`     // host:port of the pool endpoint
}

// SelectRequest asks the registry endpoint for the machine records
// matching a basic query — the record-batch building block for resync,
// white-pages delegation, and fleet inspection. Like "busy", "select"
// travels via the inline-string envelope escape: an old binary peer
// decodes the envelope fine and bounces the unknown type as an ordinary
// error reply, so mixed fleets stay healthy.
type SelectRequest struct {
	// Text is the basic query in the native language; "" selects every
	// record.
	Text string `json:"text"`
	// Limit caps the returned records (0 = no cap). Total still reports
	// the uncapped match count.
	Limit int `json:"limit,omitempty"`
	// Offset skips that many matching records (in the registry's sorted
	// name order) before Limit applies, so a fleet whose full record
	// batch would exceed MaxFrame is fetched in pages. Encoded on binary
	// connections as an optional trailing field only when non-zero: an
	// old peer decodes an offset-less first page fine and bounces a
	// paged request as a decode error — which only arises against
	// fleets too large for that peer to serve in one frame anyway.
	Offset int `json:"offset,omitempty"`
	// Full pins the reply's record batch to the full per-record encoding
	// instead of the delta batch — the on-wire differential oracle, and
	// the baseline leg of the WAN benchmark.
	Full bool `json:"full,omitempty"`
}

// SelectReply returns the matching records.
type SelectReply struct {
	Total   int       `json:"total"` // matches before Limit was applied
	Records RecordSet `json:"records"`
}

// RecordSet is a machine batch with a codec-dependent wire shape: JSON
// connections (and the Full oracle) carry the plain per-record array,
// binary connections carry the delta/dictionary batch encoding
// (registry.AppendBatch) — fleet records share most of their field
// bytes, so wire cost per record is near the diff, not the record.
type RecordSet struct {
	Machines []*registry.Machine
	// Full forces the full per-record encoding on binary codecs. It is
	// not itself transmitted: a decoded RecordSet reports the format it
	// arrived in.
	Full bool
}

// MarshalJSON encodes just the machine array, so JSON peers (including
// pre-select builds inspecting frames) see a plain record list.
func (r RecordSet) MarshalJSON() ([]byte, error) {
	return json.Marshal(r.Machines)
}

// UnmarshalJSON decodes a plain machine array.
func (r *RecordSet) UnmarshalJSON(b []byte) error {
	r.Full = false
	return json.Unmarshal(b, &r.Machines)
}

// WatchRequest subscribes the connection to the server's registry change
// stream. The request payload stays JSON-encodable on every codec (it is
// tiny and sent once per subscription), so only the streamed event frames
// pay for a typed fast path.
type WatchRequest struct {
	// Filter restricts the stream to records matching this basic query
	// text ("" streams every record's events).
	Filter string `json:"filter,omitempty"`
	// Ring sizes the server-side coalescing ring for this subscription
	// (<=0 uses the server default). Bigger rings ride out longer
	// consumer stalls before degrading to a resync.
	Ring int `json:"ring,omitempty"`
}

// RouteRequest asks a daemon for its domain-ownership view: the static
// assignments and rendezvous node set it routes by, plus — when Domains
// is set — the resolved owner of each named domain. Like "select", the
// type travels via the inline-string envelope escape on binary
// connections, so a pre-partition peer decodes the envelope fine and
// bounces the unknown type as an ordinary error reply.
type RouteRequest struct {
	Domains []string `json:"domains,omitempty"`
}

// RouteEntry is one domain's resolved owner.
type RouteEntry struct {
	Domain string `json:"domain"`
	Owner  string `json:"owner"`
	Static bool   `json:"static,omitempty"` // operator-pinned, not rendezvous
}

// RouteReply is a daemon's ownership table as it sees it.
type RouteReply struct {
	// Enabled is false when the daemon runs unpartitioned (it owns the
	// whole namespace and routes nothing).
	Enabled bool `json:"enabled"`
	// Node is the daemon's own node name (the name peers route by).
	Node string `json:"node"`
	// Nodes is the rendezvous candidate set, sorted.
	Nodes []string `json:"nodes,omitempty"`
	// Entries holds the static assignments plus the resolved owners of
	// any requested domains, sorted by domain.
	Entries []RouteEntry `json:"entries,omitempty"`
}

// WatchEvents is one frame of a watch stream: the subscription ack (first
// frame), a coalesced event batch, or a resync marker telling the
// subscriber the server dropped events and a full snapshot re-fetch is
// required.
type WatchEvents struct {
	Ack    bool     `json:"ack,omitempty"`
	Resync bool     `json:"resync,omitempty"`
	Events EventSet `json:"events,omitempty"`
}

// EventSet is an event batch with a codec-dependent wire shape: JSON
// connections carry the plain per-event array, binary connections the
// delta/dictionary batch encoding (registry.AppendEventBatch) — a monitor
// sweep's burst of near-identical dynamic updates encodes near the diff,
// not the event.
type EventSet struct {
	Events []registry.WireEvent
}

// MarshalJSON encodes just the event array, the floor shape.
func (e EventSet) MarshalJSON() ([]byte, error) {
	return json.Marshal(e.Events)
}

// UnmarshalJSON decodes a plain event array.
func (e *EventSet) UnmarshalJSON(b []byte) error {
	return json.Unmarshal(b, &e.Events)
}

// ErrorReply carries a failure back to the requester.
type ErrorReply struct {
	Message string `json:"message"`
}

// BusyReply tells the requester its request was shed by overload control
// before any worker touched it — the admission bucket was empty, the lane
// queue was full, or the deadline had already expired. RetryAfterMS hints
// when capacity should exist again; clients back off at least that long
// (with jitter) before retrying. Old peers see an unknown "busy" message
// type and surface it as an ordinary call failure.
type BusyReply struct {
	RetryAfterMS int64  `json:"retryAfterMs,omitempty"`
	Reason       string `json:"reason,omitempty"`
}

// NewEnvelope wraps a payload in a typed envelope. The payload is encoded
// lazily, by the codec of the connection that frames the envelope, so
// marshal failures surface from the framer's write (wrapped in ErrEncode)
// rather than here; the error return is kept for call-site compatibility
// and is always nil.
func NewEnvelope(typ string, id uint64, payload any) (*Envelope, error) {
	return &Envelope{Type: typ, ID: id, Msg: payload}, nil
}

// Decode unmarshals the envelope payload into out, using the codec that
// framed the envelope (JSON for hand-built or datagram envelopes).
func (e *Envelope) Decode(out any) error {
	if len(e.Payload) == 0 {
		return fmt.Errorf("wire: %s envelope has no payload", e.Type)
	}
	c := e.codec
	if c == nil {
		c = JSON
	}
	if err := c.DecodePayload(e.Payload, out); err != nil {
		return fmt.Errorf("wire: decode %s payload: %w", e.Type, err)
	}
	return nil
}
