// Package wire defines the message protocol the pipeline stages use when
// they are distributed across machines ("queries propagate from one stage
// to the next via TCP or UDP", Section 6). Frames are 4-byte big-endian
// length-prefixed JSON envelopes; each envelope carries a message type, a
// correlation id, and a typed payload.
package wire

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sync"

	"actyp/internal/pool"
	"actyp/internal/shadow"
)

// MaxFrame bounds a frame's payload size; anything larger is rejected as
// corrupt or hostile.
const MaxFrame = 1 << 20

// ErrFrameTooLarge is wrapped by WriteFrame when a frame exceeds MaxFrame.
// The error precedes any bytes reaching the wire, so the connection is
// still healthy — Client keeps it open and fails only the oversized call.
var ErrFrameTooLarge = errors.New("wire: frame exceeds limit")

// Message types.
const (
	TypeQuery     = "query"      // QueryRequest -> QueryReply
	TypeRelease   = "release"    // ReleaseRequest -> ReleaseReply
	TypeRenew     = "renew"      // RenewRequest -> RenewReply (lease heartbeat)
	TypePing      = "ping"       // empty -> empty (liveness)
	TypeSpawnPool = "spawn-pool" // SpawnPoolRequest -> SpawnPoolReply (proxy server)
	TypeError     = "error"      // ErrorReply (any request can fail)
)

// Envelope is the frame body.
type Envelope struct {
	Type    string          `json:"type"`
	ID      uint64          `json:"id"`
	Payload json.RawMessage `json:"payload,omitempty"`
}

// QueryRequest submits a (possibly composite) query in a named language.
type QueryRequest struct {
	Lang string `json:"lang,omitempty"` // "" means native
	Text string `json:"text"`
	// TTL and Visited carry the delegation state when a pool manager
	// forwards a basic query to a remote peer.
	TTL     int      `json:"ttl,omitempty"`
	Visited []string `json:"visited,omitempty"`
}

// QueryReply returns the reintegrated result.
type QueryReply struct {
	Lease     *pool.Lease     `json:"lease,omitempty"`
	Shadow    *shadow.Account `json:"shadow,omitempty"`
	Fragments int             `json:"fragments"`
	Succeeded int             `json:"succeeded"`
	ElapsedNS int64           `json:"elapsedNs"`
}

// ReleaseRequest returns a lease.
type ReleaseRequest struct {
	Lease  pool.Lease      `json:"lease"`
	Shadow *shadow.Account `json:"shadow,omitempty"`
}

// ReleaseReply acknowledges a release.
type ReleaseReply struct{}

// RenewRequest extends a lease's lifetime (clients of TTL-enabled
// services heartbeat long runs with it).
type RenewRequest struct {
	Lease pool.Lease `json:"lease"`
}

// RenewReply acknowledges a renewal.
type RenewReply struct{}

// SpawnPoolRequest asks a proxy server to start a pool instance on its
// machine.
type SpawnPoolRequest struct {
	Signature  string `json:"signature"`
	Identifier string `json:"identifier"`
	Instance   int    `json:"instance"`
	Objective  string `json:"objective,omitempty"`
}

// SpawnPoolReply reports where the new pool listens.
type SpawnPoolReply struct {
	Instance string `json:"instance"` // unique instance id
	Addr     string `json:"addr"`     // host:port of the pool endpoint
}

// ErrorReply carries a failure back to the requester.
type ErrorReply struct {
	Message string `json:"message"`
}

// pooledBuf bounds how large a pooled codec buffer may grow before it is
// dropped instead of recycled, so one oversized frame cannot pin memory.
const pooledBuf = 64 << 10

// frameEncoder pairs a reusable buffer with a JSON encoder targeting it,
// so the frame hot path re-serializes without per-call allocations.
type frameEncoder struct {
	buf bytes.Buffer
	enc *json.Encoder
}

var encPool = sync.Pool{New: func() any {
	fe := &frameEncoder{}
	fe.enc = json.NewEncoder(&fe.buf)
	return fe
}}

var readPool = sync.Pool{New: func() any {
	b := make([]byte, 4096)
	return &b
}}

// WriteFrame marshals the envelope and writes one length-prefixed frame.
// Header and body go out in a single Write from a pooled buffer, so frames
// from interleaved writers stay atomic per call and the hot path does not
// allocate.
func WriteFrame(w io.Writer, env *Envelope) error {
	fe := encPool.Get().(*frameEncoder)
	defer func() {
		if fe.buf.Cap() <= pooledBuf {
			encPool.Put(fe)
		}
	}()
	fe.buf.Reset()
	fe.buf.Write([]byte{0, 0, 0, 0}) // length prefix, patched below
	if err := fe.enc.Encode(env); err != nil {
		return fmt.Errorf("wire: marshal: %w", err)
	}
	frame := fe.buf.Bytes()
	body := len(frame) - 4 // includes the encoder's trailing newline (JSON whitespace)
	if body > MaxFrame {
		return fmt.Errorf("wire: frame of %d bytes: %w", body, ErrFrameTooLarge)
	}
	binary.BigEndian.PutUint32(frame[:4], uint32(body))
	if _, err := w.Write(frame); err != nil {
		return fmt.Errorf("wire: write frame: %w", err)
	}
	return nil
}

// ReadFrame reads one length-prefixed frame and unmarshals the envelope.
// The body is read into a pooled buffer; json.RawMessage copies the
// payload out during unmarshal, so recycling the buffer is safe.
func ReadFrame(r io.Reader) (*Envelope, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err // io.EOF signals a clean close
	}
	n := int(binary.BigEndian.Uint32(hdr[:]))
	if n == 0 || n > MaxFrame {
		return nil, fmt.Errorf("wire: bad frame length %d", n)
	}
	bp := readPool.Get().(*[]byte)
	if cap(*bp) < n {
		*bp = make([]byte, n)
	}
	body := (*bp)[:n]
	defer func() {
		if cap(*bp) <= pooledBuf {
			readPool.Put(bp)
		}
	}()
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, fmt.Errorf("wire: read body: %w", err)
	}
	var env Envelope
	if err := json.Unmarshal(body, &env); err != nil {
		return nil, fmt.Errorf("wire: unmarshal: %w", err)
	}
	if env.Type == "" {
		return nil, fmt.Errorf("wire: envelope without type")
	}
	return &env, nil
}

// NewEnvelope marshals a payload into a typed envelope.
func NewEnvelope(typ string, id uint64, payload any) (*Envelope, error) {
	raw, err := json.Marshal(payload)
	if err != nil {
		return nil, fmt.Errorf("wire: marshal %s payload: %w", typ, err)
	}
	return &Envelope{Type: typ, ID: id, Payload: raw}, nil
}

// Decode unmarshals the envelope payload into out.
func (e *Envelope) Decode(out any) error {
	if len(e.Payload) == 0 {
		return fmt.Errorf("wire: %s envelope has no payload", e.Type)
	}
	if err := json.Unmarshal(e.Payload, out); err != nil {
		return fmt.Errorf("wire: decode %s payload: %w", e.Type, err)
	}
	return nil
}
