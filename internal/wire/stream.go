package wire

// Streaming extends the request/reply multiplexers on both ends of a
// connection to server push, which the watch message family rides on.
//
// Client side: Stream registers the request id in a streams table the
// read loop consults after the one-shot pending table, so every frame the
// server sends with that id is delivered to the stream's channel instead
// of completing (and deregistering) a call. Server side: ServeConnOpts
// routes registered stream types to a StreamHandler running in its own
// tracked goroutine — long-lived subscriptions must not occupy a slot of
// the window-bounded worker pool — whose Send enqueues frames on the same
// reply channel the workers use, keeping the single-writer discipline.
//
// Delivery to a slow stream consumer never blocks the connection's read
// loop: an overflowing stream fails with ErrStreamOverflow and the
// consumer re-subscribes and re-baselines, the same lossy-but-honest
// contract as the registry's in-process subscription rings.

import (
	"context"
	"errors"
	"fmt"
	"sync"
)

// ErrStreamOverflow reports that a stream's receive buffer filled faster
// than the consumer drained it; the stream is dead and the subscription
// state is gone (resubscribe and re-baseline).
var ErrStreamOverflow = errors.New("wire: stream receive buffer overflow")

// ErrStreamEnded reports an orderly stream end (the consumer closed it).
var ErrStreamEnded = errors.New("wire: stream closed")

// DefaultStreamBuffer is the client-side receive buffer used when Stream
// is called with buf <= 0.
const DefaultStreamBuffer = 256

// ClientStream is one server-push subscription multiplexed on a Client's
// connection alongside its request/reply calls.
type ClientStream struct {
	c  *Client
	id uint64
	ch chan *Envelope

	mu     sync.Mutex
	failed bool
	err    error
}

// Stream opens a server-push subscription: the request is written like a
// call, but the id stays registered and every subsequent frame the server
// sends with it is delivered through Recv (including the server's error
// reply, if the subscription is rejected — Recv surfaces it as a
// *RemoteError). buf bounds the receive buffer (<=0 means
// DefaultStreamBuffer); a consumer that falls that far behind fails with
// ErrStreamOverflow rather than stalling the connection's read loop.
// Connection loss fails the stream; re-subscription is the caller's
// policy, not the transport's.
func (c *Client) Stream(typ string, payload any, buf int) (*ClientStream, error) {
	if buf <= 0 {
		buf = DefaultStreamBuffer
	}
	env := &Envelope{Type: typ, Msg: payload, From: c.from}

	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClosed
	}
	if err := c.ensureConnLocked(); err != nil {
		c.mu.Unlock()
		return nil, err
	}
	c.nextID++
	env.ID = c.nextID
	s := &ClientStream{c: c, id: env.ID, ch: make(chan *Envelope, buf)}
	if c.streams == nil {
		c.streams = make(map[uint64]*ClientStream)
	}
	c.streams[env.ID] = s
	conn, framer := c.conn, c.framer
	c.mu.Unlock()

	c.writeMu.Lock()
	err := framer.WriteFrame(conn, env)
	c.writeMu.Unlock()
	if err != nil {
		if preWire(err) {
			c.mu.Lock()
			delete(c.streams, env.ID)
			c.mu.Unlock()
			return nil, err
		}
		c.connFailed(conn, err)
		return nil, fmt.Errorf("%w: %v", ErrConnLost, err)
	}
	return s, nil
}

// deliver hands one frame to the stream's consumer without ever blocking
// the read loop; it reports false when the stream overflowed and must be
// deregistered.
func (s *ClientStream) deliver(env *Envelope) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.failed {
		return false
	}
	select {
	case s.ch <- env:
		return true
	default:
		s.failLocked(ErrStreamOverflow)
		return false
	}
}

// fail kills the stream with err; pending buffered frames stay readable,
// then Recv returns err.
func (s *ClientStream) fail(err error) {
	s.mu.Lock()
	s.failLocked(err)
	s.mu.Unlock()
}

func (s *ClientStream) failLocked(err error) {
	if s.failed {
		return
	}
	s.failed = true
	s.err = err
	close(s.ch)
}

// Recv blocks for the next streamed frame. Error-reply frames decode to a
// *RemoteError (the server rejected or tore down the subscription); a
// dead stream returns the terminal error after the buffered frames drain.
func (s *ClientStream) Recv(ctx context.Context) (*Envelope, error) {
	select {
	case env, ok := <-s.ch:
		if !ok {
			s.mu.Lock()
			err := s.err
			s.mu.Unlock()
			return nil, err
		}
		if env.Type == TypeError {
			var e ErrorReply
			if err := env.Decode(&e); err != nil {
				return nil, err
			}
			return nil, &RemoteError{Message: e.Message}
		}
		return env, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Close deregisters the stream and tells the server to stop sending
// (best effort; a server that predates streams bounces the cancel as an
// unknown type, which nothing is left listening for).
func (s *ClientStream) Close() error {
	c := s.c
	c.mu.Lock()
	if c.streams[s.id] != s {
		c.mu.Unlock()
		return nil
	}
	delete(c.streams, s.id)
	conn, framer := c.conn, c.framer
	c.mu.Unlock()
	s.fail(ErrStreamEnded)
	if conn != nil {
		c.writeMu.Lock()
		_ = framer.WriteFrame(conn, &Envelope{Type: TypeStreamCancel, ID: s.id})
		c.writeMu.Unlock()
	}
	return nil
}

// failStreamsLocked kills every registered stream (connection loss or
// client close). Caller holds c.mu.
func (c *Client) failStreamsLocked(err error) {
	for id, s := range c.streams {
		delete(c.streams, id)
		s.fail(err)
	}
}

// StreamHandler serves one long-lived subscription on a server
// connection. It runs in its own goroutine (outside the worker window)
// and must return promptly after st.Done() closes — connection teardown
// waits for it. env is the subscribing request.
type StreamHandler func(env *Envelope, st *ServerStream)

// ServerStream is the server half of one subscription: Send enqueues
// frames on the connection's writer, Done signals teardown (peer gone or
// subscription cancelled).
type ServerStream struct {
	id      uint64
	replies chan<- outbound
	done    chan struct{}
	stop    sync.Once
}

// ID returns the subscription's envelope id; every sent frame should
// carry it so the client can demultiplex the stream.
func (st *ServerStream) ID() uint64 { return st.id }

// Done returns a channel closed when the subscription must end: the
// connection is tearing down or the client cancelled the stream.
func (st *ServerStream) Done() <-chan struct{} { return st.done }

// Send enqueues one frame for the connection writer. It fails once the
// subscription is done; the handler should then return. Send may block
// briefly on the writer's bounded queue, never indefinitely: the writer
// drains the queue until every stream handler has exited.
func (st *ServerStream) Send(env *Envelope) error {
	select {
	case <-st.done:
		return ErrStreamEnded
	default:
	}
	select {
	case st.replies <- outbound{env: env}:
		return nil
	case <-st.done:
		return ErrStreamEnded
	}
}

func (st *ServerStream) cancel() {
	st.stop.Do(func() { close(st.done) })
}

// serverStreams tracks one connection's live subscriptions through
// teardown: the reader registers them, a client cancel or connection
// close stops them, and close() waits for every handler to return before
// the reply channel may be closed.
type serverStreams struct {
	mu      sync.Mutex
	active  map[uint64]*ServerStream
	closing bool
	wg      sync.WaitGroup
}

// start launches a handler for one subscription; it reports false (and
// starts nothing) when the id is already subscribed or the connection is
// tearing down.
func (ss *serverStreams) start(env *Envelope, h StreamHandler, replies chan<- outbound) bool {
	ss.mu.Lock()
	if ss.closing || ss.active[env.ID] != nil {
		ss.mu.Unlock()
		return false
	}
	if ss.active == nil {
		ss.active = make(map[uint64]*ServerStream)
	}
	st := &ServerStream{id: env.ID, replies: replies, done: make(chan struct{})}
	ss.active[env.ID] = st
	ss.wg.Add(1)
	ss.mu.Unlock()
	go func() {
		defer ss.wg.Done()
		defer func() {
			st.cancel()
			ss.mu.Lock()
			delete(ss.active, env.ID)
			ss.mu.Unlock()
		}()
		h(env, st)
	}()
	return true
}

// cancelID stops the subscription with the given id (client cancel).
func (ss *serverStreams) cancelID(id uint64) {
	ss.mu.Lock()
	st := ss.active[id]
	ss.mu.Unlock()
	if st != nil {
		st.cancel()
	}
}

// close stops every subscription and waits for the handlers to return.
func (ss *serverStreams) close() {
	ss.mu.Lock()
	ss.closing = true
	for _, st := range ss.active {
		st.cancel()
	}
	ss.mu.Unlock()
	ss.wg.Wait()
}
