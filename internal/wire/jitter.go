package wire

import (
	"sync/atomic"
	"time"
)

// Backoff jitter. After a server restart every heartbeating client
// observes the connection loss at the same instant; pure exponential
// backoff would march the whole fleet back through the redial (and
// retry) schedule in lockstep — a self-inflicted thundering herd that
// re-overloads the server it is waiting on. Full jitter (each sleep
// drawn uniformly from [0, backoff)) decorrelates the fleet while
// keeping the same mean pressure.

// jitterSeed is per-process: fleets must not share a stream, or the
// herd re-synchronizes.
var (
	jitterSeed = uint64(time.Now().UnixNano())
	jitterSeq  atomic.Uint64
)

// jitterRand draws the next value of a splitmix64 stream. Lock-free and
// allocation-free; statistically independent draws across goroutines.
func jitterRand() uint64 {
	x := jitterSeed + jitterSeq.Add(1)*0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// fullJitter returns a uniform duration in [0, d); non-positive d
// returns 0.
func fullJitter(d time.Duration) time.Duration {
	if d <= 0 {
		return 0
	}
	return time.Duration(jitterRand() % uint64(d))
}
