package wire

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"actyp/internal/pool"
	"actyp/internal/shadow"
)

// corpusEnvelope is one differential test case: an envelope to frame and
// the empty value its payload decodes into.
type corpusEnvelope struct {
	name    string
	typ     string
	id      uint64
	payload any
	out     func() any
}

// codecCorpus covers every fast-pathed payload type plus JSON-fallback
// payloads and edge values (empty strings, unicode, zero times, nil
// pointers, negative ints).
func codecCorpus() []corpusEnvelope {
	granted := time.Date(2026, 7, 27, 11, 30, 0, 123456789, time.UTC)
	lease := pool.Lease{
		ID: "p#0:1", Machine: "m0001", Addr: "10.0.0.1",
		ExecUnitPort: 7000, MountMgrPort: 7001,
		AccessKey: "k-αβγ", Pool: "pool-a", Granted: granted,
	}
	acct := shadow.Account{Machine: "m0001", User: "shadow03", UID: 5003}
	return []corpusEnvelope{
		{"query", TypeQuery, 7, QueryRequest{Lang: "ldap", Text: "punch.rsrc.arch = sun", TTL: 3, Visited: []string{"pm-a", "pm-β"}},
			func() any { return &QueryRequest{} }},
		{"query-empty", TypeQuery, 0, QueryRequest{},
			func() any { return &QueryRequest{} }},
		{"query-reply", TypeQuery, 8, QueryReply{Lease: &lease, Shadow: &acct, Fragments: 2, Succeeded: 1, ElapsedNS: 123456},
			func() any { return &QueryReply{} }},
		{"query-reply-bare", TypeQuery, 9, QueryReply{Fragments: -1, Succeeded: 0, ElapsedNS: -5},
			func() any { return &QueryReply{} }},
		{"release", TypeRelease, 10, ReleaseRequest{Lease: lease, Shadow: &acct},
			func() any { return &ReleaseRequest{} }},
		{"release-zerotime", TypeRelease, 11, ReleaseRequest{Lease: pool.Lease{ID: "x"}},
			func() any { return &ReleaseRequest{} }},
		{"release-reply", TypeRelease, 12, ReleaseReply{},
			func() any { return &ReleaseReply{} }},
		{"renew", TypeRenew, 13, RenewRequest{Lease: lease},
			func() any { return &RenewRequest{} }},
		{"renew-reply", TypeRenew, 14, RenewReply{},
			func() any { return &RenewReply{} }},
		{"error", TypeError, 15, ErrorReply{Message: "pool: no machine available"},
			func() any { return &ErrorReply{} }},
		{"error-empty", TypeError, 16, ErrorReply{},
			func() any { return &ErrorReply{} }},
		{"spawn", TypeSpawnPool, 17, SpawnPoolRequest{Signature: "sig", Identifier: "id", Instance: 2, Objective: "least-load"},
			func() any { return &SpawnPoolRequest{} }},
		{"spawn-reply", TypeSpawnPool, 18, SpawnPoolReply{Instance: "p#2", Addr: "127.0.0.1:9999"},
			func() any { return &SpawnPoolReply{} }},
		{"hello", TypeHello, 0, Hello{Codecs: []string{"binary", "json"}},
			func() any { return &Hello{} }},
		{"hello-ack", TypeHelloAck, 0, HelloAck{Codec: "binary"},
			func() any { return &HelloAck{} }},
		// Private protocol extensions ride the generic JSON fallback in
		// both codecs (the envelope type is not in the binary type table
		// and the payload has no fast path).
		{"custom", "pm-resolve", 19, map[string]any{"query": "punch.rsrc.arch = sun", "ttl": 4.0},
			func() any { return &map[string]any{} }},
	}
}

// normalizeTimes compares time fields with Equal semantics by rewriting
// them to UTC, so a codec is free to drop the wall-clock location.
func normalizeTimes(v any) {
	switch m := v.(type) {
	case *QueryReply:
		if m.Lease != nil {
			m.Lease.Granted = m.Lease.Granted.UTC()
		}
	case *ReleaseRequest:
		m.Lease.Granted = m.Lease.Granted.UTC()
	case *RenewRequest:
		m.Lease.Granted = m.Lease.Granted.UTC()
	}
}

// TestCodecDifferentialCorpus is the differential oracle: every corpus
// envelope must round-trip through BOTH codecs to the same decoded value
// ("byte-for-semantics": header fields identical, payloads equal after
// time normalization).
func TestCodecDifferentialCorpus(t *testing.T) {
	for _, tc := range codecCorpus() {
		t.Run(tc.name, func(t *testing.T) {
			decoded := map[string]any{}
			for _, codec := range []Codec{JSON, Binary} {
				framer := NewFramer(codec)
				env := &Envelope{Type: tc.typ, ID: tc.id, Msg: tc.payload}
				var buf bytes.Buffer
				if err := framer.WriteFrame(&buf, env); err != nil {
					t.Fatalf("%s write: %v", codec.Name(), err)
				}
				got, err := framer.ReadFrame(&buf)
				if err != nil {
					t.Fatalf("%s read: %v", codec.Name(), err)
				}
				if got.Type != tc.typ || got.ID != tc.id {
					t.Fatalf("%s header = %q/%d, want %q/%d", codec.Name(), got.Type, got.ID, tc.typ, tc.id)
				}
				out := tc.out()
				if err := got.Decode(out); err != nil {
					t.Fatalf("%s decode: %v", codec.Name(), err)
				}
				normalizeTimes(out)
				decoded[codec.Name()] = out
			}
			if !reflect.DeepEqual(decoded["json"], decoded["binary"]) {
				t.Errorf("codecs disagree:\n json   = %#v\n binary = %#v", decoded["json"], decoded["binary"])
			}
		})
	}
}

// TestBinaryFramesAreSmaller pins the compactness claim for the hot
// request/reply pair.
func TestBinaryFramesAreSmaller(t *testing.T) {
	lease := pool.Lease{ID: "p#0:1", Machine: "m0001", Addr: "10.0.0.1", ExecUnitPort: 7000, AccessKey: "k", Granted: time.Now()}
	for _, tc := range []struct {
		name string
		env  *Envelope
	}{
		{"request", &Envelope{Type: TypeQuery, ID: 42, Msg: QueryRequest{Text: "punch.rsrc.arch = sun"}}},
		{"reply", &Envelope{Type: TypeQuery, ID: 42, Msg: QueryReply{Lease: &lease, Fragments: 1, Succeeded: 1}}},
	} {
		jsonBody, err := JSON.AppendEnvelope(nil, tc.env)
		if err != nil {
			t.Fatal(err)
		}
		binBody, err := Binary.AppendEnvelope(nil, tc.env)
		if err != nil {
			t.Fatal(err)
		}
		if len(binBody) >= len(jsonBody) {
			t.Errorf("%s: binary %dB not smaller than json %dB", tc.name, len(binBody), len(jsonBody))
		}
	}
}

// TestBinaryDecodeNeverPanicsProperty fuzzes the binary decoder the same
// way the JSON reader is fuzzed: arbitrary bytes must fail cleanly, never
// panic or over-allocate.
func TestBinaryDecodeNeverPanicsProperty(t *testing.T) {
	f := func(raw []byte) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("binary decode panicked on %x: %v", raw, r)
			}
		}()
		env, err := Binary.DecodeEnvelope(raw)
		if err != nil {
			return true
		}
		// A structurally valid envelope may still carry a corrupt
		// payload; decoding it must also be panic-free.
		for _, out := range []any{&QueryRequest{}, &QueryReply{}, &ReleaseRequest{}, &ErrorReply{}} {
			_ = env.Decode(out)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

// TestBinaryTruncationAlwaysErrors mirrors the JSON truncation property:
// a binary frame cut at any byte boundary never reads as a whole frame.
func TestBinaryTruncationAlwaysErrors(t *testing.T) {
	framer := NewFramer(Binary)
	env := &Envelope{Type: TypeQuery, ID: 42, Msg: QueryRequest{Text: "punch.rsrc.arch = sun", Visited: []string{"pm-a"}}}
	var full bytes.Buffer
	if err := framer.WriteFrame(&full, env); err != nil {
		t.Fatal(err)
	}
	raw := full.Bytes()
	for cut := 0; cut < len(raw); cut++ {
		if _, err := framer.ReadFrame(bytes.NewReader(raw[:cut])); err == nil {
			t.Fatalf("truncation at %d/%d bytes read a frame", cut, len(raw))
		}
	}
	got, err := framer.ReadFrame(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("full frame failed: %v", err)
	}
	var req QueryRequest
	if err := got.Decode(&req); err != nil {
		t.Fatal(err)
	}
	if req.Text != "punch.rsrc.arch = sun" {
		t.Errorf("req = %+v", req)
	}
}

// TestBinaryPayloadTypeMismatch: a fast-path payload decoded into the
// wrong struct fails loudly instead of misparsing silently.
func TestBinaryPayloadTypeMismatch(t *testing.T) {
	framer := NewFramer(Binary)
	var buf bytes.Buffer
	env := &Envelope{Type: TypeQuery, ID: 1, Msg: QueryRequest{Text: "x"}}
	if err := framer.WriteFrame(&buf, env); err != nil {
		t.Fatal(err)
	}
	got, err := framer.ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var wrong ReleaseRequest
	if err := got.Decode(&wrong); err == nil {
		t.Error("decoding a QueryRequest payload into ReleaseRequest should fail")
	}
}

// TestWriteFrameOversizedPerCodec: the frame bound holds for every codec,
// and the failure precedes any byte reaching the writer.
func TestWriteFrameOversizedPerCodec(t *testing.T) {
	big := strings.Repeat("x", MaxFrame)
	for _, codec := range []Codec{JSON, Binary} {
		framer := NewFramer(codec)
		var buf bytes.Buffer
		err := framer.WriteFrame(&buf, &Envelope{Type: TypeQuery, ID: 1, Msg: QueryRequest{Text: big}})
		if err == nil {
			t.Errorf("%s: oversized frame should fail to write", codec.Name())
		}
		if buf.Len() != 0 {
			t.Errorf("%s: %d bytes reached the writer before the rejection", codec.Name(), buf.Len())
		}
	}
}

func TestParseCodecs(t *testing.T) {
	for _, tc := range []struct {
		spec string
		want []string
	}{
		{"", []string{"binary", "json"}},
		{"auto", []string{"binary", "json"}},
		{"json", []string{"json"}},
		{"binary", []string{"binary"}},
		{"json,binary", []string{"json", "binary"}},
	} {
		got, err := ParseCodecs(tc.spec)
		if err != nil {
			t.Fatalf("%q: %v", tc.spec, err)
		}
		if tc.spec == "" || tc.spec == "auto" {
			// The default preference is test-configurable; only check it
			// is non-empty and ends on a known codec.
			if len(got) == 0 {
				t.Fatalf("%q: empty codec list", tc.spec)
			}
			continue
		}
		if !reflect.DeepEqual(codecNames(got), tc.want) {
			t.Errorf("%q = %v, want %v", tc.spec, codecNames(got), tc.want)
		}
	}
	// Compressed variants parse; unknown names and bare algo names fail
	// with errors that point at the +algo spelling.
	got, err := ParseCodecs("binary2+flate,json")
	if err != nil {
		t.Fatalf("binary2+flate,json: %v", err)
	}
	if !reflect.DeepEqual(codecNames(got), []string{"binary2+flate", "json"}) {
		t.Errorf("binary2+flate,json = %v", codecNames(got))
	}
	for spec, hint := range map[string]string{
		"gzip":         "binary2+flate", // a known algo name is not a codec; suggest the spelling
		"flate":        "binary2+flate",
		"binary2+gzip": "flate", // unknown algo on a valid base
		"bogus":        "+flate",
		"json+flate":   "binary family", // no payload tag to compress behind
	} {
		_, err := ParseCodecs(spec)
		if err == nil {
			t.Errorf("%q should fail", spec)
			continue
		}
		if !strings.Contains(err.Error(), hint) {
			t.Errorf("%q error %q does not mention %q", spec, err, hint)
		}
	}
}
