package wire

import (
	"bytes"
	"testing"
	"time"

	"actyp/internal/pool"
	"actyp/internal/shadow"
)

// benchCodec measures one codec's full frame life: encode a
// representative request, read it back, decode the payload — the
// per-frame CPU the transport pays on each hop. The acceptance bar is
// binary >= 2x the JSON rate on the request benchmark.
func benchCodec(b *testing.B, codec Codec, payload any, out func() any) {
	framer := NewFramer(codec)
	var buf bytes.Buffer
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		env := &Envelope{Type: TypeQuery, ID: uint64(i), Msg: payload}
		if err := framer.WriteFrame(&buf, env); err != nil {
			b.Fatal(err)
		}
		got, err := framer.ReadFrame(&buf)
		if err != nil {
			b.Fatal(err)
		}
		if err := got.Decode(out()); err != nil {
			b.Fatal(err)
		}
	}
}

func benchRequest() QueryRequest {
	return QueryRequest{Text: "punch.rsrc.arch = sun && punch.rsrc.ostype = solaris", TTL: 4, Visited: []string{"pm-a", "pm-b"}}
}

func benchReply() QueryReply {
	return QueryReply{
		Lease: &pool.Lease{
			ID: "p#0:17", Machine: "m00017", Addr: "10.0.3.17",
			ExecUnitPort: 7000, MountMgrPort: 7001, AccessKey: "ak-58f2c6",
			Pool: "arch=sun#0", Granted: time.Unix(1753600000, 123456789),
		},
		Shadow:    &shadow.Account{Machine: "m00017", User: "shadow03", UID: 5003},
		Fragments: 2, Succeeded: 1, ElapsedNS: 1234567,
	}
}

func BenchmarkCodecRequestJSON(b *testing.B) {
	benchCodec(b, JSON, benchRequest(), func() any { return &QueryRequest{} })
}

func BenchmarkCodecRequestBinary(b *testing.B) {
	benchCodec(b, Binary, benchRequest(), func() any { return &QueryRequest{} })
}

func BenchmarkCodecReplyJSON(b *testing.B) {
	benchCodec(b, JSON, benchReply(), func() any { return &QueryReply{} })
}

func BenchmarkCodecReplyBinary(b *testing.B) {
	benchCodec(b, Binary, benchReply(), func() any { return &QueryReply{} })
}
