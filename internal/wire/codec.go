package wire

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strings"
	"sync"

	"actyp/internal/metrics"
)

// Codec is the pluggable encoding a connection's frames travel in. A codec
// encodes and decodes whole envelopes (the fixed type/id header plus the
// payload bytes) and decodes the payloads it produced. Connections pick a
// codec through the hello/hello-ack negotiation (see ServeConnOpts and
// Client); peers that never negotiate — pre-codec builds, UDP datagrams —
// speak JSON, the compatibility floor every deployment shares.
//
// Future codecs (compression, versioned schemas) plug in here: implement
// the three methods, register a name in CodecByName, and make the first
// body byte distinguishable from '{' (JSON) and existing codec magics so
// the negotiation ack can be sniffed.
type Codec interface {
	// Name identifies the codec during negotiation ("json", "binary").
	Name() string
	// AppendEnvelope appends env, encoded as one frame body, to dst and
	// returns the extended slice. The envelope's typed payload (Msg) is
	// encoded by this codec's rules; marshal failures surface here, before
	// any byte reaches a wire.
	AppendEnvelope(dst []byte, env *Envelope) ([]byte, error)
	// DecodeEnvelope parses one frame body. body is only valid during the
	// call (framers recycle read buffers), so implementations copy what
	// they keep.
	DecodeEnvelope(body []byte) (*Envelope, error)
	// DecodePayload unmarshals payload bytes this codec produced into out.
	DecodePayload(payload []byte, out any) error
}

// JSON is the compatibility codec: frames are JSON envelopes exactly as
// pre-codec builds wrote them. It is the differential oracle the binary
// codec is tested against and the floor negotiation falls back to.
var JSON Codec = jsonCodec{}

// Binary is the compact codec: length-prefixed fields, varint ids, no
// reflection on the fixed envelope header, with per-type fast paths for
// the hot payloads and a JSON fallback for everything else.
var Binary Codec = binaryCodec{}

// Binary2 extends Binary with the overload-control envelope fields (From,
// Deadline) behind a flags byte. Payload encodings are identical to
// Binary; only the envelope header differs. Peers that predate it simply
// never pick it during negotiation and the connection degrades to Binary
// — which is exactly the "absent = no deadline" behaviour old peers need.
var Binary2 Codec = binaryCodec{v2: true}

// defaultCodecs is the negotiation preference used when a client or server
// is not configured with an explicit list. Tests may override it to force
// a whole run onto one codec.
var defaultCodecs = []Codec{Binary2, Binary, JSON}

// DefaultCodecs returns the default negotiation preference, best first.
func DefaultCodecs() []Codec {
	return append([]Codec(nil), defaultCodecs...)
}

// CodecByName resolves a codec name ("json", "binary", "binary2"),
// optionally carrying a compression suffix ("binary2+flate"). Unknown
// algorithms and misplaced suffixes get errors that name the fix.
func CodecByName(name string) (Codec, error) {
	base, algo := splitCodecName(name)
	var inner Codec
	switch base {
	case "json":
		inner = JSON
	case "binary":
		inner = Binary
	case "binary2":
		inner = Binary2
	case AlgoFlate, "gzip", "zlib", "zstd", "lz4", "snappy":
		// A bare algorithm name is a common misspelling of the real
		// syntax; point at it.
		return nil, fmt.Errorf("wire: %q is a compression algo, not a codec: append it to a base codec, e.g. %q", name, "binary2+"+AlgoFlate)
	default:
		return nil, fmt.Errorf("wire: unknown codec %q (want json, binary, binary2, or <codec>+%s)", name, AlgoFlate)
	}
	if algo == "" {
		return inner, nil
	}
	c, err := Compressed(inner, algo)
	if err != nil {
		return nil, fmt.Errorf("%w (in codec spec %q)", err, name)
	}
	return c, nil
}

// ParseCodecs resolves a flag-style codec spec into a preference list:
// "" or "auto" means the default preference (binary first), a single name
// pins that codec (negotiation still lands on JSON against a peer that
// cannot speak it), and a comma-separated list sets an explicit order.
// Compressed codecs spell as "<codec>+<algo>" ("binary2+flate").
func ParseCodecs(spec string) ([]Codec, error) {
	if spec == "" || spec == "auto" {
		return DefaultCodecs(), nil
	}
	var out []Codec
	for _, name := range strings.Split(spec, ",") {
		c, err := CodecByName(strings.TrimSpace(name))
		if err != nil {
			return nil, err
		}
		out = append(out, c)
	}
	return out, nil
}

func codecNames(cs []Codec) []string {
	names := make([]string, len(cs))
	for i, c := range cs {
		names[i] = c.Name()
	}
	return names
}

// ErrEncode wraps failures producing a frame's bytes (payload marshal,
// unsupported re-framing). The error precedes any byte reaching the wire,
// so the connection is still healthy — only the failed message is lost.
var ErrEncode = errors.New("wire: encode")

// jsonCodec is the JSON implementation of Codec. The wire format is
// byte-identical to the pre-codec protocol, so negotiating down to it
// interoperates with old peers.
type jsonCodec struct{}

func (jsonCodec) Name() string { return "json" }

// jsonEnvelope is the marshalled shape; Envelope itself carries extra
// bookkeeping (Msg, codec) that must not leak onto the wire. From and
// Deadline are omitted when unset, so frames without them stay
// byte-identical to the pre-overload protocol (and old decoders ignore
// them when present).
type jsonEnvelope struct {
	Type     string          `json:"type"`
	ID       uint64          `json:"id"`
	From     string          `json:"from,omitempty"`
	Deadline int64           `json:"deadline,omitempty"`
	Payload  json.RawMessage `json:"payload,omitempty"`
}

func (jsonCodec) AppendEnvelope(dst []byte, env *Envelope) ([]byte, error) {
	payload := []byte(env.Payload)
	switch {
	case len(payload) > 0:
		if env.codec != nil && env.codec != JSON {
			return dst, fmt.Errorf("cannot re-frame %s payload decoded by %q as json", env.Type, env.codec.Name())
		}
	case env.Msg != nil:
		raw, err := json.Marshal(env.Msg)
		if err != nil {
			return dst, fmt.Errorf("marshal %s payload: %w", env.Type, err)
		}
		payload = raw
	}
	raw, err := json.Marshal(jsonEnvelope{Type: env.Type, ID: env.ID, From: env.From, Deadline: env.Deadline, Payload: payload})
	if err != nil {
		return dst, fmt.Errorf("marshal %s envelope: %w", env.Type, err)
	}
	return append(dst, raw...), nil
}

func (jsonCodec) DecodeEnvelope(body []byte) (*Envelope, error) {
	var env Envelope
	if err := json.Unmarshal(body, &env); err != nil {
		return nil, fmt.Errorf("unmarshal: %w", err)
	}
	if env.Type == "" {
		return nil, errors.New("envelope without type")
	}
	env.codec = JSON
	return &env, nil
}

func (jsonCodec) DecodePayload(payload []byte, out any) error {
	return json.Unmarshal(payload, out)
}

// pooledBuf bounds how large a pooled codec buffer may grow before it is
// dropped instead of recycled, so one oversized frame cannot pin memory.
const pooledBuf = 64 << 10

var writePool = sync.Pool{New: func() any {
	b := make([]byte, 0, 4096)
	return &b
}}

var readPool = sync.Pool{New: func() any {
	b := make([]byte, 4096)
	return &b
}}

// Framer binds a codec to one side of a connection: it writes and reads
// 4-byte big-endian length-prefixed frames whose bodies the codec encodes.
// The framer itself is stateless and safe for concurrent use; per-frame
// scratch comes from shared pools.
type Framer struct {
	codec Codec
	stats *metrics.WireStats
}

// NewFramer builds a framer over c (nil means JSON).
func NewFramer(c Codec) *Framer {
	return NewFramerStats(c, nil)
}

// NewFramerStats builds a framer over c that additionally accounts every
// frame it writes and reads into stats under the codec's name (nil stats
// means no accounting). Wire bytes include the length prefix; raw bytes
// are the uncompressed-equivalent size, so raw/wire is the connection's
// compression ratio.
func NewFramerStats(c Codec, stats *metrics.WireStats) *Framer {
	if c == nil {
		c = JSON
	}
	return &Framer{codec: c, stats: stats}
}

// rawFrameSize returns the uncompressed-equivalent size of a frame whose
// body is encoded by c: for a binary-family frame carrying a compressed
// payload, the size it would have had with the payload inflated;
// otherwise the frame size as-is.
func rawFrameSize(c Codec, body []byte) int {
	if bc, ok := c.(binaryCodec); ok {
		return 4 + bc.rawBodyLen(body)
	}
	return 4 + len(body)
}

// Codec returns the codec the framer is bound to.
func (f *Framer) Codec() Codec { return f.codec }

// WriteFrame encodes the envelope and writes one length-prefixed frame.
// Header and body go out in a single Write from a pooled buffer, so frames
// from interleaved writers stay atomic per call and the hot path does not
// allocate. Encode failures (ErrEncode, ErrFrameTooLarge) are reported
// before any byte reaches w — the connection stays healthy.
func (f *Framer) WriteFrame(w io.Writer, env *Envelope) error {
	bp := writePool.Get().(*[]byte)
	defer func() {
		if cap(*bp) <= pooledBuf {
			writePool.Put(bp)
		}
	}()
	buf := append((*bp)[:0], 0, 0, 0, 0) // length prefix, patched below
	buf, err := f.codec.AppendEnvelope(buf, env)
	*bp = buf[:0]
	if err != nil {
		// Both sentinels stay in the chain: a compressing codec rejects
		// over-cap payloads inside AppendEnvelope with ErrFrameTooLarge,
		// and callers match on that as well as on ErrEncode.
		return fmt.Errorf("%w: %w", ErrEncode, err)
	}
	body := len(buf) - 4
	if body > MaxFrame {
		return fmt.Errorf("wire: frame of %d bytes: %w", body, ErrFrameTooLarge)
	}
	binary.BigEndian.PutUint32(buf[:4], uint32(body))
	if _, err := w.Write(buf); err != nil {
		return fmt.Errorf("wire: write frame: %w", err)
	}
	if f.stats != nil {
		f.stats.Sent(f.codec.Name(), len(buf), rawFrameSize(f.codec, buf[4:]))
	}
	return nil
}

// ReadFrame reads one length-prefixed frame and decodes the envelope. The
// body is read into a pooled buffer; codecs copy the payload out during
// decode, so recycling the buffer is safe.
func (f *Framer) ReadFrame(r io.Reader) (*Envelope, error) {
	bp, body, err := readFrameBody(r)
	if err != nil {
		return nil, err
	}
	defer putReadBuf(bp)
	if f.stats != nil {
		f.stats.Received(f.codec.Name(), 4+len(body), rawFrameSize(f.codec, body))
	}
	env, err := f.codec.DecodeEnvelope(body)
	if err != nil {
		return nil, fmt.Errorf("wire: %w", err)
	}
	return env, nil
}

// readFrameBody reads one raw frame body into a pooled buffer. The caller
// must release it with putReadBuf once the body has been decoded.
func readFrameBody(r io.Reader) (*[]byte, []byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, nil, err // io.EOF signals a clean close
	}
	n := int(binary.BigEndian.Uint32(hdr[:]))
	if n == 0 || n > MaxFrame {
		return nil, nil, fmt.Errorf("wire: bad frame length %d", n)
	}
	bp := readPool.Get().(*[]byte)
	if cap(*bp) < n {
		*bp = make([]byte, n)
	}
	body := (*bp)[:n]
	if _, err := io.ReadFull(r, body); err != nil {
		putReadBuf(bp)
		return nil, nil, fmt.Errorf("wire: read body: %w", err)
	}
	return bp, body, nil
}

func putReadBuf(bp *[]byte) {
	if cap(*bp) <= pooledBuf {
		readPool.Put(bp)
	}
}

var jsonFramer = NewFramer(JSON)

// WriteFrame writes one JSON frame. It is the compatibility shim pre-codec
// peers speak (and tests use to simulate them); negotiated connections go
// through a codec-bound Framer instead.
func WriteFrame(w io.Writer, env *Envelope) error { return jsonFramer.WriteFrame(w, env) }

// ReadFrame reads one JSON frame; see WriteFrame for when to prefer a
// codec-bound Framer.
func ReadFrame(r io.Reader) (*Envelope, error) { return jsonFramer.ReadFrame(r) }

// EncodeDatagram encodes one envelope as a standalone datagram body (no
// length prefix). Datagrams carry no negotiation state, so they always
// travel in JSON, the floor both ends are guaranteed to share.
func EncodeDatagram(env *Envelope) ([]byte, error) {
	b, err := JSON.AppendEnvelope(nil, env)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrEncode, err)
	}
	return b, nil
}

// DecodeDatagram decodes a standalone JSON datagram body.
func DecodeDatagram(b []byte) (*Envelope, error) {
	env, err := JSON.DecodeEnvelope(b)
	if err != nil {
		return nil, fmt.Errorf("wire: %w", err)
	}
	return env, nil
}
