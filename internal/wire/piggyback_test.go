package wire

import (
	"errors"
	"net"
	"testing"
	"time"
)

// dialEcho opens one raw connection to an echo server for a piggybacked
// one-shot exchange.
func dialEcho(t *testing.T, addr string) net.Conn {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = conn.Close() })
	_ = conn.SetDeadline(time.Now().Add(5 * time.Second))
	return conn
}

func piggyEcho(t *testing.T, conn net.Conn, codecs []Codec, token string) {
	t.Helper()
	env, err := NewEnvelope("echo", 0, echoPayload{Token: token})
	if err != nil {
		t.Fatal(err)
	}
	reply, err := CallPiggyback(conn, codecs, env)
	if err != nil {
		t.Fatalf("%s: %v", token, err)
	}
	var p echoPayload
	if err := reply.Decode(&p); err != nil {
		t.Fatalf("%s: %v", token, err)
	}
	if p.Token != token {
		t.Fatalf("token = %q, want %q", p.Token, token)
	}
}

// TestPiggybackNegotiated: the first request rides the hello, and its
// reply arrives in the negotiated codec right behind the ack — one round
// trip total.
func TestPiggybackNegotiated(t *testing.T) {
	addr, stop := startEchoServerOpts(t, ServeOptions{Window: 4, Codecs: []Codec{Binary, JSON}})
	defer stop()
	piggyEcho(t, dialEcho(t, addr), []Codec{Binary, JSON}, "piggy-binary")
}

// TestPiggybackJSONOnlyServer: a JSON-only server still serves the
// piggybacked request; only the codec lands on the floor.
func TestPiggybackJSONOnlyServer(t *testing.T) {
	addr, stop := startEchoServerOpts(t, ServeOptions{Window: 4, Codecs: []Codec{JSON}})
	defer stop()
	piggyEcho(t, dialEcho(t, addr), []Codec{Binary, JSON}, "piggy-floor")
}

// TestPiggybackOldServerFallback: a pre-negotiation server bounces the
// hello without ever seeing the embedded request; the call must resend it
// on the JSON floor and still succeed.
func TestPiggybackOldServerFallback(t *testing.T) {
	addr, stop := startEchoServerOpts(t, ServeOptions{Window: 4, DisableNegotiation: true})
	defer stop()
	piggyEcho(t, dialEcho(t, addr), nil, "piggy-old-server")
}

// TestPiggybackFirstUnawareServer: a server that negotiates codecs but
// predates Hello.First silently drops the embedded request (its JSON
// decoder ignores the unknown field) and acks without the First echo —
// the client must detect the missing echo and re-send the request as an
// ordinary frame in the negotiated codec instead of hanging forever.
func TestPiggybackFirstUnawareServer(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	done := make(chan error, 1)
	go func() {
		done <- func() error {
			conn, err := ln.Accept()
			if err != nil {
				return err
			}
			defer conn.Close()
			if _, err := ReadFrame(conn); err != nil { // the hello; First dropped
				return err
			}
			bin := NewFramer(Binary)
			// Ack in the chosen codec with no First echo — the PR 4 shape.
			ack := &Envelope{Type: TypeHelloAck, Msg: HelloAck{Codec: "binary"}}
			if err := bin.WriteFrame(conn, ack); err != nil {
				return err
			}
			req, err := bin.ReadFrame(conn) // the client's re-send
			if err != nil {
				return err
			}
			var p echoPayload
			if err := req.Decode(&p); err != nil {
				return err
			}
			reply, _ := NewEnvelope("echo", req.ID, p)
			return bin.WriteFrame(conn, reply)
		}()
	}()
	piggyEcho(t, dialEcho(t, ln.Addr().String()), []Codec{Binary, JSON}, "piggy-first-unaware")
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

// TestPiggybackRemoteError: a server-side failure of the piggybacked
// request surfaces as *RemoteError, exactly like Client.Call.
func TestPiggybackRemoteError(t *testing.T) {
	addr, stop := startEchoServerOpts(t, ServeOptions{Window: 4})
	defer stop()
	conn := dialEcho(t, addr)
	// The echo handler fails to decode a payload-free envelope.
	env := &Envelope{Type: "echo", ID: 9}
	_, err := CallPiggyback(conn, nil, env)
	var remote *RemoteError
	if !errors.As(err, &remote) {
		t.Fatalf("err = %v, want *RemoteError", err)
	}
}

// TestPiggybackAfterFirstFrame: the connection stays usable for ordinary
// framed traffic after a piggybacked exchange (the framer is on the
// negotiated codec on both sides).
func TestPiggybackAfterFirstFrame(t *testing.T) {
	addr, stop := startEchoServerOpts(t, ServeOptions{Window: 4, Codecs: []Codec{Binary, JSON}})
	defer stop()
	conn := dialEcho(t, addr)
	piggyEcho(t, conn, []Codec{Binary, JSON}, "piggy-first")
	f := NewFramer(Binary)
	env, err := NewEnvelope("echo", 7, echoPayload{Token: "framed-after"})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.WriteFrame(conn, env); err != nil {
		t.Fatal(err)
	}
	reply, err := f.ReadFrame(conn)
	if err != nil {
		t.Fatal(err)
	}
	var p echoPayload
	if err := reply.Decode(&p); err != nil {
		t.Fatal(err)
	}
	if reply.ID != 7 || p.Token != "framed-after" {
		t.Fatalf("reply = %d %q", reply.ID, p.Token)
	}
}

// TestHelloFirstBinaryRoundTrip pins the binary codec's extended hello
// encoding against the JSON oracle.
func TestHelloFirstBinaryRoundTrip(t *testing.T) {
	for _, hello := range []Hello{
		{Codecs: []string{"binary", "json"}},
		{Codecs: []string{"json"}, First: &HelloFirst{Type: "query", ID: 42, Payload: []byte(`{"text":"q"}`)}},
		{Codecs: nil, First: &HelloFirst{Type: "ping", ID: 1}},
	} {
		for _, codec := range []Codec{JSON, Binary} {
			env := &Envelope{Type: TypeHello, ID: 3, Msg: hello}
			body, err := codec.AppendEnvelope(nil, env)
			if err != nil {
				t.Fatalf("%s: %v", codec.Name(), err)
			}
			back, err := codec.DecodeEnvelope(body)
			if err != nil {
				t.Fatalf("%s: %v", codec.Name(), err)
			}
			var h Hello
			if err := back.Decode(&h); err != nil {
				t.Fatalf("%s: %v", codec.Name(), err)
			}
			if len(h.Codecs) != len(hello.Codecs) {
				t.Fatalf("%s: codecs = %v, want %v", codec.Name(), h.Codecs, hello.Codecs)
			}
			if (h.First == nil) != (hello.First == nil) {
				t.Fatalf("%s: first = %+v, want %+v", codec.Name(), h.First, hello.First)
			}
			if h.First != nil {
				if h.First.Type != hello.First.Type || h.First.ID != hello.First.ID ||
					string(h.First.Payload) != string(hello.First.Payload) {
					t.Fatalf("%s: first = %+v, want %+v", codec.Name(), h.First, hello.First)
				}
			}
		}
	}
}
