package wire

import (
	"strings"
	"sync"
	"time"

	"actyp/internal/metrics"
)

// Overload control: under saturation a strictly-FIFO dispatch window lets
// a flood of bulk queries starve the cheap control frames (Ping/Renew)
// that keep leases alive, turning transient overload into mass lease
// loss. The Lanes dispatcher classifies decoded envelopes into priority
// lanes and serves them strict-control-first, then weighted round-robin
// between the lease and bulk lanes; token-bucket admission and
// deadline-aware shedding reject work with a cheap Busy reply before it
// occupies a queue slot or a worker.

// Lane is a dispatch priority class. The numeric values double as
// metrics class indices (metrics.ClassControl etc.).
type Lane int

const (
	// LaneControl carries the cheap frames that keep the system alive:
	// liveness pings, lease renewals and releases, codec negotiation.
	// Control frames are never shed and always dispatch first.
	LaneControl Lane = iota
	// LaneLease carries lease acquisition: proxy pool spawns and the
	// stage-protocol (pm-*) resolve/release traffic.
	LaneLease
	// LaneBulk carries queries and everything unclassified.
	LaneBulk
	numLanes
)

// String returns the lane's display name.
func (l Lane) String() string {
	switch l {
	case LaneControl:
		return "control"
	case LaneLease:
		return "lease"
	}
	return "bulk"
}

// LaneOf is the default classifier: control frames (ping, renew, release,
// negotiation) above lease traffic (spawn-pool, the stage protocol's pm-*
// messages) above bulk (query and everything else).
func LaneOf(typ string) Lane {
	switch typ {
	case TypePing, TypeRenew, TypeRelease, TypeHello, TypeHelloAck:
		return LaneControl
	case TypeSpawnPool:
		return LaneLease
	}
	if strings.HasPrefix(typ, "pm-") {
		return LaneLease
	}
	return LaneBulk
}

// AdmitFunc decides whether a decoded request may occupy a queue slot.
// It is called from the read loop before any worker is involved, so it
// must be cheap. A false return sheds the request with a Busy reply
// hinting the caller to stay away for retryAfter.
type AdmitFunc func(env *Envelope) (ok bool, retryAfter time.Duration)

// DefaultLaneQueueCap is the per-lane queue capacity used when a policy
// does not set one.
const DefaultLaneQueueCap = 64

// DefaultLeaseWeight and DefaultBulkWeight are the weighted round-robin
// shares used between the lease and bulk lanes when no control frame is
// waiting: four lease dispatches per bulk dispatch.
const (
	DefaultLeaseWeight = 4
	DefaultBulkWeight  = 1
)

// OverloadPolicy configures the overload-control dispatch path. A nil
// policy on ServeOptions keeps the original single-FIFO behaviour.
type OverloadPolicy struct {
	// Classify maps an envelope type to a lane; nil means LaneOf.
	Classify func(typ string) Lane
	// LeaseWeight and BulkWeight set the round-robin shares between the
	// lease and bulk lanes; values below 1 take the defaults (4 and 1).
	LeaseWeight int
	BulkWeight  int
	// QueueCap bounds each lane's queue; below 1 takes
	// DefaultLaneQueueCap. A full lease or bulk lane sheds with Busy; a
	// full control lane blocks the reader (control is never shed), which
	// pushes back through the kernel socket buffer exactly like the
	// FIFO path's saturated window.
	QueueCap int
	// Admit, when set, gates lease and bulk requests before they occupy
	// a queue slot (control frames are always admitted). Typically a
	// per-account token bucket keyed off Envelope.From.
	Admit AdmitFunc
	// Stats, when set, receives per-class admitted/shed/expired/done
	// counters and live queue-depth gauges.
	Stats *metrics.OverloadStats
	// Now is the clock (tests inject one); nil means time.Now.
	Now func() time.Time
}

func (p *OverloadPolicy) classify(typ string) Lane {
	if p.Classify != nil {
		if l := p.Classify(typ); l >= LaneControl && l < numLanes {
			return l
		}
		return LaneBulk
	}
	return LaneOf(typ)
}

func (p *OverloadPolicy) now() time.Time {
	if p.Now != nil {
		return p.Now()
	}
	return time.Now()
}

func (p *OverloadPolicy) queueCap() int {
	if p.QueueCap < 1 {
		return DefaultLaneQueueCap
	}
	return p.QueueCap
}

func (p *OverloadPolicy) leaseWeight() int {
	if p.LeaseWeight < 1 {
		return DefaultLeaseWeight
	}
	return p.LeaseWeight
}

func (p *OverloadPolicy) bulkWeight() int {
	if p.BulkWeight < 1 {
		return DefaultBulkWeight
	}
	return p.BulkWeight
}

// laneItem is one queued request plus transport-specific context (the
// UDP path carries the reply address; TCP needs none).
type laneItem struct {
	env  *Envelope
	meta any
}

// Lanes is the per-lane queue set one overloaded endpoint dispatches
// from. Producers Offer decoded envelopes (shedding over-limit or
// expired ones via the shed callback); consumers Pop them in priority
// order. Both TCP connections (ServeConnOpts) and the UDP window path
// share it.
type Lanes struct {
	policy *OverloadPolicy
	// shed emits a Busy reply for a request rejected before dispatch.
	// It is called from Offer's caller goroutine or a popper, never
	// under the queue lock.
	shed func(env *Envelope, meta any, busy *BusyReply)

	mu      sync.Mutex
	cond    *sync.Cond
	q       [numLanes][]laneItem
	credits [numLanes]int
	closed  bool
}

// NewLanes builds a lane set under policy. shed is invoked (not under
// any lock) for every request rejected before dispatch, with the Busy
// reply to deliver; it must not block indefinitely.
func NewLanes(policy *OverloadPolicy, shed func(env *Envelope, meta any, busy *BusyReply)) *Lanes {
	l := &Lanes{policy: policy, shed: shed}
	l.cond = sync.NewCond(&l.mu)
	l.credits[LaneLease] = policy.leaseWeight()
	l.credits[LaneBulk] = policy.bulkWeight()
	return l
}

// Offer classifies env and enqueues it, returning true if it was
// admitted to a lane queue. meta rides along untouched and comes back
// from Pop (and the shed callback). Lease and bulk requests are shed
// (false, with a Busy reply via the shed callback) when their deadline
// has already expired, the admission gate rejects them, or their lane is
// full. Control frames are never shed: a full control lane blocks the
// caller until space frees, and only a closed lane set drops them
// (the connection is dying; no reply can be delivered anyway).
func (l *Lanes) Offer(env *Envelope, meta any) bool {
	lane := l.policy.classify(env.Type)
	stats := l.policy.Stats
	if lane != LaneControl {
		if env.Expired(l.policy.now()) {
			if stats != nil {
				stats.Expired(int(lane))
			}
			l.shed(env, meta, &BusyReply{Reason: "deadline expired before dispatch"})
			return false
		}
		if l.policy.Admit != nil {
			if ok, retry := l.policy.Admit(env); !ok {
				if stats != nil {
					stats.Shed(int(lane))
				}
				l.shed(env, meta, &BusyReply{RetryAfterMS: retry.Milliseconds(), Reason: "over admission limit"})
				return false
			}
		}
	}
	l.mu.Lock()
	if lane == LaneControl {
		for !l.closed && len(l.q[lane]) >= l.policy.queueCap() {
			l.cond.Wait()
		}
	} else if len(l.q[lane]) >= l.policy.queueCap() {
		l.mu.Unlock()
		if stats != nil {
			stats.Shed(int(lane))
		}
		l.shed(env, meta, &BusyReply{Reason: "lane queue full"})
		return false
	}
	if l.closed {
		l.mu.Unlock()
		return false
	}
	l.q[lane] = append(l.q[lane], laneItem{env: env, meta: meta})
	l.mu.Unlock()
	l.cond.Broadcast()
	if stats != nil {
		stats.Admitted(int(lane))
		stats.DepthAdd(int(lane), 1)
	}
	return true
}

// Pop blocks for the next envelope in priority order: control first,
// then weighted round-robin between lease and bulk. Requests whose
// deadline expired while queued are shed (Busy via the callback) and
// skipped. Pop returns false only when the lane set is closed AND
// drained — envelopes already queued at Close still come out, matching
// the FIFO path's promise that every read frame is dispatched.
func (l *Lanes) Pop() (*Envelope, any, Lane, bool) {
	stats := l.policy.Stats
	for {
		l.mu.Lock()
		for !l.closed && l.emptyLocked() {
			l.cond.Wait()
		}
		if l.emptyLocked() {
			l.mu.Unlock()
			return nil, nil, 0, false
		}
		lane := l.pickLocked()
		item := l.q[lane][0]
		l.q[lane][0] = laneItem{} // release the references for GC
		l.q[lane] = l.q[lane][1:]
		l.mu.Unlock()
		l.cond.Broadcast() // space freed: wake a blocked control Offer
		if stats != nil {
			stats.DepthAdd(int(lane), -1)
		}
		if lane != LaneControl && item.env.Expired(l.policy.now()) {
			if stats != nil {
				stats.Expired(int(lane))
			}
			l.shed(item.env, item.meta, &BusyReply{Reason: "deadline expired before dispatch"})
			continue
		}
		return item.env, item.meta, lane, true
	}
}

// Done records one completed handler for goodput accounting.
func (l *Lanes) Done(lane Lane) {
	if s := l.policy.Stats; s != nil {
		s.Done(int(lane))
	}
}

// Close marks the lane set finished: blocked Offers return false,
// blocked Pops drain what is queued and then return false.
func (l *Lanes) Close() {
	l.mu.Lock()
	l.closed = true
	l.mu.Unlock()
	l.cond.Broadcast()
}

func (l *Lanes) emptyLocked() bool {
	for i := range l.q {
		if len(l.q[i]) > 0 {
			return false
		}
	}
	return true
}

// pickLocked returns the lane to serve next: control strictly first,
// otherwise weighted round-robin between lease and bulk (credits refill
// when every waiting lane has spent its share). At least one lane is
// non-empty when called.
func (l *Lanes) pickLocked() Lane {
	if len(l.q[LaneControl]) > 0 {
		return LaneControl
	}
	for {
		for _, lane := range [...]Lane{LaneLease, LaneBulk} {
			if len(l.q[lane]) > 0 && l.credits[lane] > 0 {
				l.credits[lane]--
				return lane
			}
		}
		l.credits[LaneLease] = l.policy.leaseWeight()
		l.credits[LaneBulk] = l.policy.bulkWeight()
	}
}

// BusyEnvelope wraps a BusyReply correlated to the shed request.
func BusyEnvelope(id uint64, busy *BusyReply) *Envelope {
	return &Envelope{Type: TypeBusy, ID: id, Msg: *busy}
}
