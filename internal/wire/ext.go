package wire

// Extension payloads: private protocol messages (the stage protocol's
// pm-* family) can opt out of the JSON fallback inside binary frames by
// implementing ExtPayload — a hand-rolled field codec using the same
// length-prefixed primitives as the built-in fast paths. Such payloads
// travel under their own tag byte (0x02), so a peer that predates the
// type fails to decode that one message (an error reply; the connection
// survives) — the same one-message blast radius as any payload decode
// failure, and private extensions are only ever spoken between
// like-versioned stage processes anyway. JSON connections are
// unaffected: the JSON codec marshals the struct as always.

import (
	"encoding/binary"
	"time"

	"actyp/internal/pool"
)

// ExtPayload is implemented by payload types that carry their own binary
// field codec. AppendExt appends the fields to dst and returns the
// extended slice; DecodeExt reads them back from the cursor in the same
// order. Implementations must consume exactly what they wrote — trailing
// bytes fail the decode.
type ExtPayload interface {
	AppendExt(dst []byte) []byte
	DecodeExt(cur *Cursor) error
}

// Cursor walks an extension payload with latched errors and hard bounds
// checks: after the first failure every read returns a zero value, and
// the error surfaces once from the decode. Corrupt or hostile frames
// fail cleanly instead of panicking or over-allocating.
type Cursor struct {
	c binCursor
}

// Err returns the latched decode error, if any.
func (c *Cursor) Err() error { return c.c.err }

// Byte reads one byte.
func (c *Cursor) Byte() byte { return c.c.byte() }

// Uvarint reads an unsigned varint.
func (c *Cursor) Uvarint() uint64 { return c.c.uvarint() }

// Varint reads a signed varint.
func (c *Cursor) Varint() int64 { return c.c.varint() }

// String reads a length-prefixed string.
func (c *Cursor) String() string { return c.c.string() }

// Strings reads a counted list of length-prefixed strings.
func (c *Cursor) Strings() []string { return c.c.strings() }

// Bytes reads a length-prefixed byte string (copied out; empty decodes
// as nil).
func (c *Cursor) Bytes() []byte { return c.c.bytes() }

// Time reads a presence byte plus UnixNano varint.
func (c *Cursor) Time() time.Time { return c.c.time() }

// Lease reads a lease in the shared wire layout (see AppendLease).
func (c *Cursor) Lease() pool.Lease { return readBinLease(&c.c) }

// AppendUvarint appends an unsigned varint.
func AppendUvarint(dst []byte, v uint64) []byte { return binary.AppendUvarint(dst, v) }

// AppendVarint appends a signed varint.
func AppendVarint(dst []byte, v int64) []byte { return binary.AppendVarint(dst, v) }

// AppendString appends a length-prefixed string.
func AppendString(dst []byte, s string) []byte { return appendBinString(dst, s) }

// AppendStrings appends a counted list of length-prefixed strings.
func AppendStrings(dst []byte, ss []string) []byte { return appendBinStrings(dst, ss) }

// AppendBytes appends a length-prefixed byte string.
func AppendBytes(dst, b []byte) []byte { return appendBinBytes(dst, b) }

// AppendTime appends a presence byte plus UnixNano varint; the zero time
// travels as the absent marker.
func AppendTime(dst []byte, t time.Time) []byte { return appendBinTime(dst, t) }

// AppendLease appends a lease in the same layout the built-in fast paths
// use, so extension payloads carrying leases stay byte-compatible with
// them.
func AppendLease(dst []byte, l pool.Lease) []byte { return appendBinLease(dst, l) }
