package querymgr

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"actyp/internal/pool"
	"actyp/internal/query"
)

// countingRM grants leases it tracks, so reintegration invariants (no
// leaks, no double releases) can be checked exactly. failEvery > 0 makes
// every failEvery-th Resolve fail.
type countingRM struct {
	name      string
	failEvery int

	mu    sync.Mutex
	seq   int
	calls int
	out   map[string]bool
}

func newCountingRM(name string, failEvery int) *countingRM {
	return &countingRM{name: name, failEvery: failEvery, out: make(map[string]bool)}
}

func (c *countingRM) Name() string { return c.name }

func (c *countingRM) Resolve(q *query.Query) (*pool.Lease, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.calls++
	if c.failEvery > 0 && c.calls%c.failEvery == 0 {
		return nil, pool.ErrExhausted
	}
	c.seq++
	id := fmt.Sprintf("%s-%d", c.name, c.seq)
	c.out[id] = true
	return &pool.Lease{ID: id, Machine: "m", Pool: c.name}, nil
}

func (c *countingRM) Release(lease *pool.Lease) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.out[lease.ID] {
		return fmt.Errorf("%s: double or foreign release of %s", c.name, lease.ID)
	}
	delete(c.out, lease.ID)
	return nil
}

func (c *countingRM) outstanding() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.out)
}

// Property: whatever mix of fragment successes and failures, WaitAll
// reintegration keeps exactly one lease (the response's) and releases all
// others; after releasing the winner nothing is outstanding.
func TestReintegrationConservationProperty(t *testing.T) {
	f := func(seed int64, alts, failEvery uint8) bool {
		nAlts := int(alts%4) + 1
		rng := rand.New(rand.NewSource(seed))
		rm := newCountingRM("rm", int(failEvery%4)) // 0: never fail
		m, err := New(Config{Name: "qm", Managers: []ResourceManager{rm}, Mode: WaitAll})
		if err != nil {
			return false
		}
		c := query.NewComposite()
		for i := 0; i < nAlts; i++ {
			c.Add("punch.rsrc.arch", query.Eq(fmt.Sprintf("arch%d", i)))
		}
		// A little extra nondeterminism in scheduling.
		if rng.Intn(2) == 0 {
			c.Add("punch.rsrc.domain", query.Eq("purdue"))
		}
		resp, err := m.Submit(c)
		if err != nil {
			// Total failure: nothing may be outstanding.
			return rm.outstanding() == 0
		}
		if resp.Lease == nil {
			return false
		}
		// Exactly the winner is outstanding.
		if rm.outstanding() != 1 {
			return false
		}
		if err := m.Release(resp.Lease); err != nil {
			return false
		}
		return rm.outstanding() == 0
	}
	// punch schema requires declared keys; arch values are free strings,
	// so validation passes.
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: the same holds under redundancy — duplicates are extra grants
// that reintegration must also return.
func TestRedundantReintegrationConservationProperty(t *testing.T) {
	f := func(seed int64, alts uint8) bool {
		nAlts := int(alts%3) + 1
		a := newCountingRM("a", 0)
		b := newCountingRM("b", 3)
		m, err := New(Config{
			Name: "qm", Managers: []ResourceManager{a, b},
			Mode: WaitAll, Redundancy: 2,
			Selector: NewRandomSelector(seed),
		})
		if err != nil {
			return false
		}
		c := query.NewComposite()
		for i := 0; i < nAlts; i++ {
			c.Add("punch.rsrc.arch", query.Eq(fmt.Sprintf("arch%d", i)))
		}
		resp, err := m.Submit(c)
		if err != nil {
			return a.outstanding() == 0 && b.outstanding() == 0
		}
		if a.outstanding()+b.outstanding() != 1 {
			return false
		}
		if err := m.Release(resp.Lease); err != nil {
			return false
		}
		return a.outstanding() == 0 && b.outstanding() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
