package querymgr

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"actyp/internal/directory"
	"actyp/internal/pool"
	"actyp/internal/poolmgr"
	"actyp/internal/query"
	"actyp/internal/registry"
)

// fakeRM is a scriptable pool manager.
type fakeRM struct {
	name string

	mu       sync.Mutex
	resolves int
	releases []string
	fail     bool
	delay    time.Duration
}

func (f *fakeRM) Name() string { return f.name }

func (f *fakeRM) Resolve(q *query.Query) (*pool.Lease, error) {
	f.mu.Lock()
	f.resolves++
	n := f.resolves
	fail, delay := f.fail, f.delay
	f.mu.Unlock()
	if delay > 0 {
		time.Sleep(delay)
	}
	if fail {
		return nil, pool.ErrExhausted
	}
	return &pool.Lease{ID: fmt.Sprintf("%s-%d", f.name, n), Machine: "m", Pool: f.name}, nil
}

func (f *fakeRM) Release(lease *pool.Lease) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.releases = append(f.releases, lease.ID)
	return nil
}

func (f *fakeRM) released() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.releases)
}

func newQM(t *testing.T, mode QoS, rms ...ResourceManager) *Manager {
	t.Helper()
	m, err := New(Config{Name: "qm", Managers: rms, Mode: mode})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Managers: []ResourceManager{&fakeRM{name: "a"}}}); err == nil {
		t.Error("missing name should fail")
	}
	if _, err := New(Config{Name: "qm"}); err == nil {
		t.Error("missing managers should fail")
	}
	m := newQM(t, WaitAll, &fakeRM{name: "a"})
	if m.Name() != "qm" {
		t.Errorf("name = %q", m.Name())
	}
	langs := m.Languages()
	if len(langs) != 1 || langs[0] != "native" {
		t.Errorf("languages = %v", langs)
	}
}

func TestSubmitBasicQuery(t *testing.T) {
	rm := &fakeRM{name: "pm"}
	m := newQM(t, WaitAll, rm)
	resp, err := m.SubmitText("", "punch.rsrc.arch = sun")
	if err != nil {
		t.Fatal(err)
	}
	if resp.Lease == nil || resp.Fragments != 1 || resp.Succeeded != 1 {
		t.Errorf("resp = %+v", resp)
	}
	submitted, fragments, reassembled := m.Stats()
	if submitted != 1 || fragments != 1 || reassembled != 1 {
		t.Errorf("stats = %d/%d/%d", submitted, fragments, reassembled)
	}
}

func TestSubmitValidatesSchema(t *testing.T) {
	m := newQM(t, WaitAll, &fakeRM{name: "pm"})
	if _, err := m.SubmitText("", "punch.rsrc.bogus = 1"); err == nil {
		t.Error("undeclared key should fail validation")
	}
	if _, err := m.SubmitText("", "nofamily.rsrc.arch = sun"); err == nil {
		t.Error("unknown family should fail validation")
	}
}

func TestSubmitCompositeWaitAllReleasesSurplus(t *testing.T) {
	rm := &fakeRM{name: "pm"}
	m := newQM(t, WaitAll, rm)
	resp, err := m.SubmitText("", "punch.rsrc.arch = sun | hp | alpha")
	if err != nil {
		t.Fatal(err)
	}
	if resp.Fragments != 3 || resp.Succeeded != 3 {
		t.Errorf("resp = %+v", resp)
	}
	if resp.Lease == nil {
		t.Fatal("no lease")
	}
	// Two of the three leases must have been released back.
	if rm.released() != 2 {
		t.Errorf("released %d leases, want 2", rm.released())
	}
}

func TestSubmitCompositeFirstMatch(t *testing.T) {
	fast := &fakeRM{name: "fast"}
	slow := &fakeRM{name: "slow", delay: 50 * time.Millisecond}
	sel := NewParamSelector("arch", map[string][]int{"sun": {1}, "hp": {0}}, nil, 1)
	m, err := New(Config{Name: "qm", Managers: []ResourceManager{fast, slow}, Selector: sel, Mode: FirstMatch})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	resp, err := m.SubmitText("", "punch.rsrc.arch = sun | hp")
	if err != nil {
		t.Fatal(err)
	}
	if resp.Lease == nil {
		t.Fatal("no lease")
	}
	if resp.Lease.Pool != "fast" {
		t.Errorf("first-match winner = %s", resp.Lease.Pool)
	}
	if elapsed := time.Since(start); elapsed > 40*time.Millisecond {
		t.Errorf("first-match waited %v for the slow fragment", elapsed)
	}
	// The slow fragment's lease is eventually released in the background.
	deadline := time.Now().Add(2 * time.Second)
	for slow.released() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if slow.released() != 1 {
		t.Errorf("straggler lease not released")
	}
}

func TestSubmitNoMatch(t *testing.T) {
	rm := &fakeRM{name: "pm", fail: true}
	m := newQM(t, WaitAll, rm)
	resp, err := m.SubmitText("", "punch.rsrc.arch = sun | hp")
	if !errors.Is(err, ErrNoMatch) {
		t.Errorf("err = %v", err)
	}
	if resp == nil || resp.Succeeded != 0 || resp.Fragments != 2 {
		t.Errorf("resp = %+v", resp)
	}

	// FirstMatch mode also reports no-match after all fragments fail.
	m2 := newQM(t, FirstMatch, rm)
	if _, err := m2.SubmitText("", "punch.rsrc.arch = sun | hp"); !errors.Is(err, ErrNoMatch) {
		t.Errorf("first-match err = %v", err)
	}
}

func TestSubmitTextUnknownLanguage(t *testing.T) {
	m := newQM(t, WaitAll, &fakeRM{name: "pm"})
	if _, err := m.SubmitText("klingon", "x"); err == nil {
		t.Error("unknown language should fail")
	}
}

func TestCustomTranslator(t *testing.T) {
	rm := &fakeRM{name: "pm"}
	tr := TranslatorFunc(func(text string) (*query.Composite, error) {
		// A toy foreign language: "ARCH <value>".
		c := query.NewComposite()
		c.Add("punch.rsrc.arch", query.Eq(text[len("ARCH "):]))
		return c, nil
	})
	m, err := New(Config{
		Name:        "qm",
		Managers:    []ResourceManager{rm},
		Translators: map[string]Translator{"toy": tr},
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := m.SubmitText("toy", "ARCH sun")
	if err != nil {
		t.Fatal(err)
	}
	if resp.Lease == nil {
		t.Error("toy language query failed")
	}
	if got := len(m.Languages()); got != 2 {
		t.Errorf("languages = %d", got)
	}
}

func TestRelease(t *testing.T) {
	rm1 := &fakeRM{name: "a"}
	rm2 := &fakeRM{name: "b"}
	m := newQM(t, WaitAll, rm1, rm2)
	if err := m.Release(&pool.Lease{ID: "x", Pool: "a"}); err != nil {
		t.Fatal(err)
	}
	if rm1.released() != 1 {
		t.Errorf("first manager should have released")
	}
}

func TestEndToEndWithRealPoolManager(t *testing.T) {
	db := registry.NewDB()
	if err := registry.DefaultFleetSpec(16).Populate(db, time.Unix(0, 0)); err != nil {
		t.Fatal(err)
	}
	dir := directory.New()
	factory := &poolmgr.LocalFactory{DB: db}
	defer factory.CloseAll()
	pm, err := poolmgr.New(poolmgr.Config{Name: "pm", Dir: dir, Factory: factory})
	if err != nil {
		t.Fatal(err)
	}
	qm := newQM(t, WaitAll, pm)

	resp, err := qm.SubmitText("", "punch.rsrc.arch = sun | hp")
	if err != nil {
		t.Fatal(err)
	}
	if resp.Lease == nil || resp.Fragments != 2 {
		t.Fatalf("resp = %+v", resp)
	}
	// The composite created two pools (one per architecture).
	if dir.Instances() != 2 {
		t.Errorf("instances = %d", dir.Instances())
	}
	if err := qm.Release(resp.Lease); err != nil {
		t.Fatal(err)
	}
}

func TestSelectors(t *testing.T) {
	a, b, c := &fakeRM{name: "a"}, &fakeRM{name: "b"}, &fakeRM{name: "c"}
	mgrs := []ResourceManager{a, b, c}
	q := query.New().Set("punch.rsrc.arch", query.Eq("sun"))

	t.Run("random covers all", func(t *testing.T) {
		s := NewRandomSelector(3)
		seen := map[string]bool{}
		for i := 0; i < 100; i++ {
			seen[s.Select(q, mgrs).Name()] = true
		}
		if len(seen) != 3 {
			t.Errorf("random selector covered %d managers", len(seen))
		}
		if s.Select(q, nil) != nil {
			t.Error("empty manager list should yield nil")
		}
	})

	t.Run("round robin cycles", func(t *testing.T) {
		s := &RoundRobinSelector{}
		want := []string{"a", "b", "c", "a"}
		for i, w := range want {
			if got := s.Select(q, mgrs).Name(); got != w {
				t.Errorf("pick %d = %s, want %s", i, got, w)
			}
		}
		if s.Select(q, nil) != nil {
			t.Error("empty manager list should yield nil")
		}
	})

	t.Run("param routes by value", func(t *testing.T) {
		s := NewParamSelector("arch", map[string][]int{"sun": {0}, "hp": {1, 2}}, nil, 1)
		for i := 0; i < 10; i++ {
			if got := s.Select(q, mgrs).Name(); got != "a" {
				t.Fatalf("sun routed to %s", got)
			}
		}
		hp := query.New().Set("punch.rsrc.arch", query.Eq("hp"))
		for i := 0; i < 50; i++ {
			got := s.Select(hp, mgrs).Name()
			if got != "b" && got != "c" {
				t.Fatalf("hp routed to %s", got)
			}
		}
		// Unrouted value falls back to all managers.
		alpha := query.New().Set("punch.rsrc.arch", query.Eq("alpha"))
		seen := map[string]bool{}
		for i := 0; i < 100; i++ {
			seen[s.Select(alpha, mgrs).Name()] = true
		}
		if len(seen) != 3 {
			t.Errorf("fallback covered %d managers", len(seen))
		}
		// Missing key also falls back.
		empty := query.New()
		if s.Select(empty, mgrs) == nil {
			t.Error("missing key should still select")
		}
		// Out-of-range route index falls back rather than panicking.
		s2 := NewParamSelector("arch", map[string][]int{"sun": {99}}, nil, 1)
		if s2.Select(q, mgrs) == nil {
			t.Error("bad route index should fall back")
		}
		if s.Select(q, nil) != nil {
			t.Error("empty manager list should yield nil")
		}
	})
}
