// Package querymgr implements ActYP query managers (Section 5.2.1), the
// head and tail stages of the resource-management pipeline. A query manager
// translates native-language queries into the internal format, decomposes
// composite ("or") queries into basic components that are processed
// concurrently by the rest of the pipeline, selects pool managers by
// parameter value, randomly, or round-robin, and reintegrates the fragment
// results at the end of the pipeline — the paper's analogy to TCP/IP
// datagram fragmentation and reassembly.
package querymgr

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"actyp/internal/pool"
	"actyp/internal/query"
)

// ResourceManager is the downstream pipeline as seen by a query manager: a
// pool-manager stage that resolves basic queries to leases. poolmgr.Manager
// implements it; the networked mode substitutes RPC stubs.
type ResourceManager interface {
	Name() string
	Resolve(q *query.Query) (*pool.Lease, error)
	Release(lease *pool.Lease) error
}

// Translator converts a native resource-specification language into the
// internal composite form. Registering translators per family is how the
// pipeline interoperates with foreign systems ("this could allow ActYP to
// reuse Condor's ClassAds", Section 5.1).
type Translator interface {
	Translate(text string) (*query.Composite, error)
}

// TranslatorFunc adapts a function to the Translator interface.
type TranslatorFunc func(text string) (*query.Composite, error)

// Translate calls f.
func (f TranslatorFunc) Translate(text string) (*query.Composite, error) { return f(text) }

// QoS selects the reintegration policy of Section 6.
type QoS int

const (
	// WaitAll reintegrates every fragment and returns the best lease,
	// releasing the surplus ones.
	WaitAll QoS = iota
	// FirstMatch returns the first successful fragment immediately and
	// releases stragglers in the background — the paper's low-latency
	// option for composite queries.
	FirstMatch
)

// Response is the reintegrated answer to one (possibly composite) query.
type Response struct {
	// Lease is the allocated machine; nil only when Err is non-nil.
	Lease *pool.Lease
	// Fragments is how many basic queries the composite decomposed into.
	Fragments int
	// Succeeded counts fragments that produced a lease.
	Succeeded int
	// Elapsed is the wall-clock time from submission to reintegration.
	Elapsed time.Duration
}

// ErrNoMatch is returned when no fragment of the query could be satisfied.
var ErrNoMatch = errors.New("querymgr: no resources matched the query")

// Config describes a query manager.
type Config struct {
	// Name identifies this query manager instance.
	Name string
	// Schemas validates incoming queries; default NewSchemaRegistry().
	Schemas *query.SchemaRegistry
	// Managers is the pool-manager stage. Required, non-empty.
	Managers []ResourceManager
	// Selector picks a manager per basic query; default RandomSelector.
	Selector Selector
	// Translators by language name; "native" is preinstalled with the
	// key-value parser of Section 5.1.
	Translators map[string]Translator
	// Mode is the reintegration QoS (default WaitAll).
	Mode QoS
	// Redundancy implements the higher QoS level of Section 6: each
	// basic query is simultaneously forwarded to this many distinct pool
	// managers and the best response is used (surplus leases are
	// released). Values below 2, or above the manager count, clamp.
	Redundancy int
	// Clock supplies time; defaults to time.Now.
	Clock func() time.Time
}

// Manager is one query-manager stage instance.
type Manager struct {
	name        string
	schemas     *query.SchemaRegistry
	managers    []ResourceManager
	selector    Selector
	translators map[string]Translator
	mode        QoS
	redundancy  int
	clock       func() time.Time

	statMu     sync.Mutex
	submitted  int
	fragments  int
	reassembly int
}

// New creates a query manager.
func New(cfg Config) (*Manager, error) {
	if cfg.Name == "" {
		return nil, fmt.Errorf("querymgr: config needs a name")
	}
	if len(cfg.Managers) == 0 {
		return nil, fmt.Errorf("querymgr: config needs at least one pool manager")
	}
	if cfg.Schemas == nil {
		cfg.Schemas = query.NewSchemaRegistry()
	}
	if cfg.Selector == nil {
		cfg.Selector = NewRandomSelector(1)
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	redundancy := cfg.Redundancy
	if redundancy < 1 {
		redundancy = 1
	}
	if redundancy > len(cfg.Managers) {
		redundancy = len(cfg.Managers)
	}
	m := &Manager{
		name:        cfg.Name,
		schemas:     cfg.Schemas,
		managers:    cfg.Managers,
		selector:    cfg.Selector,
		translators: make(map[string]Translator),
		mode:        cfg.Mode,
		redundancy:  redundancy,
		clock:       cfg.Clock,
	}
	m.translators["native"] = TranslatorFunc(query.Parse)
	for lang, tr := range cfg.Translators {
		m.translators[lang] = tr
	}
	return m, nil
}

// Name returns the query manager's instance name.
func (m *Manager) Name() string { return m.name }

// Languages lists the installed translator names.
func (m *Manager) Languages() []string {
	out := make([]string, 0, len(m.translators))
	for lang := range m.translators {
		out = append(out, lang)
	}
	return out
}

// SubmitText translates a native-language query and submits it. lang ""
// means "native".
func (m *Manager) SubmitText(lang, text string) (*Response, error) {
	if lang == "" {
		lang = "native"
	}
	tr, ok := m.translators[lang]
	if !ok {
		return nil, fmt.Errorf("querymgr %s: no translator for language %q", m.name, lang)
	}
	c, err := tr.Translate(text)
	if err != nil {
		return nil, err
	}
	return m.Submit(c)
}

// Submit validates, decomposes, routes, and reintegrates a composite
// query, returning a machine lease.
func (m *Manager) Submit(c *query.Composite) (*Response, error) {
	start := m.clock()
	if err := m.schemas.Validate(c); err != nil {
		return nil, err
	}
	basics := c.Decompose()

	m.statMu.Lock()
	m.submitted++
	m.fragments += len(basics)
	m.statMu.Unlock()

	re := newReintegrator(len(basics)*m.redundancy, m.mode)
	for i, q := range basics {
		for _, mgr := range m.pickManagers(q) {
			go func(idx int, q *query.Query, mgr ResourceManager) {
				lease, err := mgr.Resolve(q)
				re.deliver(fragment{index: idx, lease: lease, err: err, mgr: mgr})
			}(i, q, mgr)
		}
	}
	winner, succeeded := re.wait()

	m.statMu.Lock()
	m.reassembly++
	m.statMu.Unlock()

	resp := &Response{
		Fragments: len(basics),
		Succeeded: succeeded,
		Elapsed:   m.clock().Sub(start),
	}
	if winner.lease == nil {
		return resp, ErrNoMatch
	}
	resp.Lease = winner.lease
	return resp, nil
}

// pickManagers chooses the managers a basic query is forwarded to: the
// selector's pick, plus — under redundancy — additional distinct managers
// in slice order.
func (m *Manager) pickManagers(q *query.Query) []ResourceManager {
	first := m.selector.Select(q, m.managers)
	out := []ResourceManager{first}
	if m.redundancy <= 1 {
		return out
	}
	for _, mgr := range m.managers {
		if len(out) >= m.redundancy {
			break
		}
		if mgr != first {
			out = append(out, mgr)
		}
	}
	return out
}

// Release returns a lease through the pool-manager stage. Any manager can
// route a release; the first one that recognizes the pool instance wins.
func (m *Manager) Release(lease *pool.Lease) error {
	var firstErr error
	for _, mgr := range m.managers {
		if err := mgr.Release(lease); err == nil {
			return nil
		} else if firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Stats returns counters: composite queries submitted, basic fragments
// produced, and reassemblies completed.
func (m *Manager) Stats() (submitted, fragments, reassembled int) {
	m.statMu.Lock()
	defer m.statMu.Unlock()
	return m.submitted, m.fragments, m.reassembly
}

// fragment is one basic-query result flowing back to the reintegration
// stage.
type fragment struct {
	index int
	lease *pool.Lease
	err   error
	mgr   ResourceManager
}

// reintegrator reassembles fragment results, propagating the state needed
// to release surplus leases — the paper's explicit analogy to IP datagram
// reassembly.
type reintegrator struct {
	mode    QoS
	total   int
	results chan fragment
}

func newReintegrator(total int, mode QoS) *reintegrator {
	return &reintegrator{mode: mode, total: total, results: make(chan fragment, total)}
}

func (r *reintegrator) deliver(f fragment) { r.results <- f }

// wait blocks until the reintegration policy is satisfied. In WaitAll mode
// it collects every fragment, keeps the lowest-indexed success
// (deterministic), and releases the rest. In FirstMatch mode it returns on
// the first success and releases stragglers in the background.
func (r *reintegrator) wait() (fragment, int) {
	var winner fragment
	winner.index = -1
	succeeded := 0

	if r.mode == FirstMatch {
		for i := 0; i < r.total; i++ {
			f := <-r.results
			if f.err == nil && f.lease != nil {
				succeeded++
				winner = f
				// Release stragglers without blocking the reply.
				remaining := r.total - i - 1
				go func(n int) {
					for j := 0; j < n; j++ {
						g := <-r.results
						if g.err == nil && g.lease != nil && g.mgr != nil {
							_ = g.mgr.Release(g.lease)
						}
					}
				}(remaining)
				return winner, succeeded
			}
		}
		return winner, succeeded
	}

	frags := make([]fragment, 0, r.total)
	for i := 0; i < r.total; i++ {
		frags = append(frags, <-r.results)
	}
	for _, f := range frags {
		if f.err != nil || f.lease == nil {
			continue
		}
		succeeded++
		if winner.index < 0 || f.index < winner.index {
			if winner.index >= 0 && winner.mgr != nil {
				_ = winner.mgr.Release(winner.lease)
			}
			winner = f
		} else if f.mgr != nil {
			_ = f.mgr.Release(f.lease)
		}
	}
	return winner, succeeded
}
