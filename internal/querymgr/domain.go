package querymgr

import (
	"hash/fnv"

	"actyp/internal/query"
	"actyp/internal/route"
)

// DomainSelector pins every domain-routable basic query to one pool
// manager, chosen by hashing the query's domain over the manager slice.
// On a partitioned node this keeps all traffic for one domain flowing
// through the same pool manager, so that manager's pool cache and
// delegated-lease table stay hot for the domains the node owns — the
// intra-node counterpart of the inter-node ownership routing done by
// route.Table. Queries without a routable domain predicate fall through
// to the wrapped selector, so mixed workloads keep their old spread.
type DomainSelector struct {
	// Fallback handles queries with no usable domain predicate.
	// Defaults to a deterministic RandomSelector.
	Fallback Selector
}

// NewDomainSelector builds a domain-affinity selector around fallback.
func NewDomainSelector(fallback Selector, seed int64) *DomainSelector {
	if fallback == nil {
		fallback = NewRandomSelector(seed)
	}
	return &DomainSelector{Fallback: fallback}
}

// Select implements Selector.
func (s *DomainSelector) Select(q *query.Query, managers []ResourceManager) ResourceManager {
	if len(managers) == 0 {
		return nil
	}
	if domain, ok := route.DomainOf(q); ok {
		return managers[domainIndex(domain, len(managers))]
	}
	return s.Fallback.Select(q, managers)
}

// domainIndex maps a domain onto [0, n) with the same FNV+splitmix
// finishing the rest of the codebase uses: raw FNV-1a alone has weak
// avalanche on short trailing input, which would cluster similar domain
// names onto one manager.
func domainIndex(domain string, n int) int {
	if n <= 1 {
		return 0
	}
	h := fnv.New64a()
	h.Write([]byte(domain))
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return int(x % uint64(n))
}
