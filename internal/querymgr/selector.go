package querymgr

import (
	"math/rand"
	"sync"

	"actyp/internal/query"
)

// Selector picks the pool manager that should handle a basic query.
// Section 5.2.1: "Query managers select pool managers on the basis of the
// values of one or more of the parameters specified within queries. It is
// also possible to select pool managers in random or round-robin order."
type Selector interface {
	Select(q *query.Query, managers []ResourceManager) ResourceManager
}

// RandomSelector picks uniformly at random.
type RandomSelector struct {
	mu  sync.Mutex
	rng *rand.Rand
}

// NewRandomSelector returns a random selector seeded deterministically.
func NewRandomSelector(seed int64) *RandomSelector {
	if seed == 0 {
		seed = 1
	}
	return &RandomSelector{rng: rand.New(rand.NewSource(seed))}
}

// Select implements Selector.
func (s *RandomSelector) Select(q *query.Query, managers []ResourceManager) ResourceManager {
	if len(managers) == 0 {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return managers[s.rng.Intn(len(managers))]
}

// RoundRobinSelector cycles through the managers.
type RoundRobinSelector struct {
	mu   sync.Mutex
	next int
}

// Select implements Selector.
func (s *RoundRobinSelector) Select(q *query.Query, managers []ResourceManager) ResourceManager {
	if len(managers) == 0 {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	m := managers[s.next%len(managers)]
	s.next++
	return m
}

// ParamSelector routes by the value of one rsrc parameter: the example of
// Section 5.2.1 configures "one set of pool managers for sun machines and
// a different set for hp machines", with random selection inside a set.
type ParamSelector struct {
	// Key is the rsrc parameter name to route on (for example "arch").
	Key string
	// Family scopes the key (default "punch").
	Family string
	// Routes maps parameter values to indices into the manager slice.
	Routes map[string][]int
	// Default holds the indices used when the value has no route or the
	// key is absent; empty means "all managers".
	Default []int

	mu  sync.Mutex
	rng *rand.Rand
}

// NewParamSelector builds a parameter-based selector with a deterministic
// random stream for intra-set selection.
func NewParamSelector(key string, routes map[string][]int, def []int, seed int64) *ParamSelector {
	if seed == 0 {
		seed = 1
	}
	return &ParamSelector{
		Key:     key,
		Family:  "punch",
		Routes:  routes,
		Default: def,
		rng:     rand.New(rand.NewSource(seed)),
	}
}

// Select implements Selector.
func (s *ParamSelector) Select(q *query.Query, managers []ResourceManager) ResourceManager {
	if len(managers) == 0 {
		return nil
	}
	family := s.Family
	if family == "" {
		family = "punch"
	}
	set := s.Default
	cond, ok := q.Lookup(query.Key{Family: family, Class: query.ClassRsrc, Name: s.Key})
	if ok && cond.Op == query.OpEq {
		if routed, found := s.Routes[cond.Str]; found {
			set = routed
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(set) == 0 {
		return managers[s.rng.Intn(len(managers))]
	}
	idx := set[s.rng.Intn(len(set))]
	if idx < 0 || idx >= len(managers) {
		return managers[s.rng.Intn(len(managers))]
	}
	return managers[idx]
}
