package querymgr

import (
	"sync/atomic"

	"actyp/internal/query"
)

// Selector picks the pool manager that should handle a basic query.
// Section 5.2.1: "Query managers select pool managers on the basis of the
// values of one or more of the parameters specified within queries. It is
// also possible to select pool managers in random or round-robin order."
//
// All selectors are lock-free on the selection path: random draws come
// from a seeded splitmix64 sequence advanced with one atomic add (the same
// treatment poolmgr's instance selection got), and round-robin is a single
// atomic counter — concurrent fragments never serialize on a shared
// rand.Rand mutex.
type Selector interface {
	Select(q *query.Query, managers []ResourceManager) ResourceManager
}

// splitmix is a lock-free deterministic pseudo-random index source.
type splitmix struct {
	seed uint64
	seq  atomic.Uint64
}

// next returns a pseudo-random index in [0, n), deterministic per seed.
func (s *splitmix) next(n int) int {
	if n <= 1 {
		return 0
	}
	x := s.seed + s.seq.Add(1)*0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return int(x % uint64(n))
}

// RandomSelector picks uniformly at random.
type RandomSelector struct {
	rng splitmix
}

// NewRandomSelector returns a random selector seeded deterministically.
func NewRandomSelector(seed int64) *RandomSelector {
	if seed == 0 {
		seed = 1
	}
	s := &RandomSelector{}
	s.rng.seed = uint64(seed)
	return s
}

// Select implements Selector.
func (s *RandomSelector) Select(q *query.Query, managers []ResourceManager) ResourceManager {
	if len(managers) == 0 {
		return nil
	}
	return managers[s.rng.next(len(managers))]
}

// RoundRobinSelector cycles through the managers. The zero value starts at
// the first manager.
type RoundRobinSelector struct {
	next atomic.Uint64
}

// Select implements Selector.
func (s *RoundRobinSelector) Select(q *query.Query, managers []ResourceManager) ResourceManager {
	if len(managers) == 0 {
		return nil
	}
	return managers[int((s.next.Add(1)-1)%uint64(len(managers)))]
}

// ParamSelector routes by the value of one rsrc parameter: the example of
// Section 5.2.1 configures "one set of pool managers for sun machines and
// a different set for hp machines", with random selection inside a set.
type ParamSelector struct {
	// Key is the rsrc parameter name to route on (for example "arch").
	Key string
	// Family scopes the key (default "punch").
	Family string
	// Routes maps parameter values to indices into the manager slice.
	Routes map[string][]int
	// Default holds the indices used when the value has no route or the
	// key is absent; empty means "all managers".
	Default []int

	rng splitmix
}

// NewParamSelector builds a parameter-based selector with a deterministic
// random stream for intra-set selection.
func NewParamSelector(key string, routes map[string][]int, def []int, seed int64) *ParamSelector {
	if seed == 0 {
		seed = 1
	}
	s := &ParamSelector{
		Key:     key,
		Family:  "punch",
		Routes:  routes,
		Default: def,
	}
	s.rng.seed = uint64(seed)
	return s
}

// Select implements Selector.
func (s *ParamSelector) Select(q *query.Query, managers []ResourceManager) ResourceManager {
	if len(managers) == 0 {
		return nil
	}
	family := s.Family
	if family == "" {
		family = "punch"
	}
	set := s.Default
	cond, ok := q.Lookup(query.Key{Family: family, Class: query.ClassRsrc, Name: s.Key})
	if ok && cond.Op == query.OpEq {
		if routed, found := s.Routes[cond.Str]; found {
			set = routed
		}
	}
	if len(set) == 0 {
		return managers[s.rng.next(len(managers))]
	}
	idx := set[s.rng.next(len(set))]
	if idx < 0 || idx >= len(managers) {
		return managers[s.rng.next(len(managers))]
	}
	return managers[idx]
}
