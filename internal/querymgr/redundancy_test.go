package querymgr

import (
	"testing"
	"time"
)

func TestRedundantForwardingUsesBestResponse(t *testing.T) {
	slow := &fakeRM{name: "slow", delay: 30 * time.Millisecond}
	fast := &fakeRM{name: "fast"}
	m, err := New(Config{
		Name:       "qm",
		Managers:   []ResourceManager{slow, fast},
		Mode:       FirstMatch,
		Redundancy: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	resp, err := m.SubmitText("", "punch.rsrc.arch = sun")
	if err != nil {
		t.Fatal(err)
	}
	if resp.Lease.Pool != "fast" {
		t.Errorf("redundant winner = %s", resp.Lease.Pool)
	}
	if elapsed := time.Since(start); elapsed > 25*time.Millisecond {
		t.Errorf("redundant submit waited %v for the slow manager", elapsed)
	}
	// The slow manager's duplicate lease is released in the background.
	deadline := time.Now().Add(2 * time.Second)
	for slow.released() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if slow.released() != 1 {
		t.Error("duplicate lease never released")
	}
}

func TestRedundantWaitAllReleasesDuplicates(t *testing.T) {
	a, b := &fakeRM{name: "a"}, &fakeRM{name: "b"}
	m, err := New(Config{
		Name:       "qm",
		Managers:   []ResourceManager{a, b},
		Mode:       WaitAll,
		Redundancy: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := m.SubmitText("", "punch.rsrc.arch = sun")
	if err != nil {
		t.Fatal(err)
	}
	if resp.Lease == nil {
		t.Fatal("no lease")
	}
	if got := a.released() + b.released(); got != 1 {
		t.Errorf("released %d duplicates, want exactly 1", got)
	}
}

func TestRedundancySurvivesOneFailingManager(t *testing.T) {
	bad := &fakeRM{name: "bad", fail: true}
	good := &fakeRM{name: "good"}
	m, err := New(Config{
		Name:       "qm",
		Managers:   []ResourceManager{bad, good},
		Mode:       WaitAll,
		Redundancy: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := m.SubmitText("", "punch.rsrc.arch = sun")
	if err != nil {
		t.Fatalf("redundancy should mask the failing manager: %v", err)
	}
	if resp.Lease.Pool != "good" {
		t.Errorf("winner = %s", resp.Lease.Pool)
	}
}

func TestRedundancyClamps(t *testing.T) {
	a := &fakeRM{name: "a"}
	m, err := New(Config{Name: "qm", Managers: []ResourceManager{a}, Redundancy: 99})
	if err != nil {
		t.Fatal(err)
	}
	if m.redundancy != 1 {
		t.Errorf("redundancy = %d, want clamp to 1", m.redundancy)
	}
	resp, err := m.SubmitText("", "punch.rsrc.arch = sun")
	if err != nil || resp.Lease == nil {
		t.Fatalf("clamped submit failed: %v", err)
	}
	if a.released() != 0 {
		t.Error("no duplicates should exist at redundancy 1")
	}
}

func TestRedundantComposite(t *testing.T) {
	a, b := &fakeRM{name: "a"}, &fakeRM{name: "b"}
	m, err := New(Config{
		Name: "qm", Managers: []ResourceManager{a, b},
		Mode: WaitAll, Redundancy: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := m.SubmitText("", "punch.rsrc.arch = sun | hp")
	if err != nil {
		t.Fatal(err)
	}
	if resp.Fragments != 2 {
		t.Errorf("fragments = %d", resp.Fragments)
	}
	// 2 fragments x 2 redundancy = 4 leases; exactly 3 released.
	if got := a.released() + b.released(); got != 3 {
		t.Errorf("released %d, want 3", got)
	}
}
